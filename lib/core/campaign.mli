(** Campaign runner: the experimental procedure of paper §V.

    For each benchmark x tool x category cell: profile the dynamic
    population once, then run N independent single-bit-flip injections,
    classifying each run against the golden output.  Deterministic in the
    configured seed. *)

type tool = Llfi_tool | Pinfi_tool

val tool_name : tool -> string

val tool_of_name : string -> tool option
(** Inverse of {!tool_name}; [None] for unknown names. *)

type config = {
  trials : int;
  seed : int;
  model : Fault_model.t;
      (** the corruption applied at each trial's planned target (default
          {!Fault_model.Bitflip}, the paper's single-bit flip).  A
          non-default model keys distinct per-cell RNG streams and adds
          a [model] column to the CSV; the default keeps both
          byte-identical to a pre-model-axis campaign. *)
  llfi : Llfi.config;
  pinfi : Pinfi.config;
  backend : Backend.config;
  snapshot : bool;
      (** plan every trial's target first, execute sorted by target on a
          rolling fast-forward machine, and re-emit results in trial
          order.  Output is byte-identical either way; off is the
          straight-line reference path (the [--no-snapshot] escape
          hatch). *)
  compile : bool;
      (** closure-compile both programs once per workload ({!Llfi.prepare}
          / {!Pinfi.prepare} with [~compile]) and run every golden,
          profiling and trial execution through the compiled tier.
          Byte-identical results either way; off is the tree-walking
          reference path (the [--no-compile] escape hatch). *)
}

val default_config : config
(** 200 trials per cell, seed 2014, both tools' paper policies,
    snapshot execution on. *)

val paper_config : config
(** The paper's 1000 injections per cell. *)

type prepared = {
  workload : Workload.t;
  prog : Ir.Prog.t;  (** optimized IR, shared by both tools *)
  asm : Backend.Program.t;
  llfi : Llfi.t;
  pinfi : Pinfi.t;
}

type cell = {
  c_workload : string;
  c_tool : tool;
  c_category : Category.t;
  c_model : Fault_model.t;
  c_population : int;
  c_tally : Verdict.tally;
}

val cell_rng : config -> workload:string -> tool:tool -> category:Category.t -> Support.Rng.t
(** The deterministic per-cell random stream.  Keyed by seed, workload,
    tool, category — and [config.model] when it is not the default, so
    each model's campaign is an independent experiment while default
    streams stay byte-identical to the pre-model-axis ones. *)

val target_draw : int
(** The index of the injection-target draw within a trial's RNG stream:
    always [0], i.e. the target is the {e first} thing a trial draws
    (the bit position comes later, inside the interpreter).  This single
    definition is the authority both consumers rely on — the snapshot
    planner in {!run_cell_range} (plan all targets up front, leaving
    every stream positioned exactly as the direct path would) and the
    injection-space coverage report ([fi fuzz --coverage]).  Asserted
    behaviorally, for both injectors, by test_fuzz.ml. *)

val prepare : config -> Workload.t -> prepared
(** Compile at both levels, golden-run both, profile both.
    @raise Invalid_argument if the two levels' golden outputs differ. *)

type runner
(** A per-cell fast-forward machine (see {!Vm.Ir_exec.ff}), reusable
    across successive trial ranges of the same cell.  Mutable — use one
    per domain. *)

type rejoin
(** Golden-run reconvergence journals for one prepared workload, one
    per tool level (see {!Vm.Rejoin}); shared read-only by every
    category's runners. *)

val record_rejoin : prepared -> rejoin
(** One extra digest-maintaining golden run per tool level
    ({!Llfi.record_rejoin} / {!Pinfi.record_rejoin}).  Trials of a
    [runner ~rejoin] finish early once their state digest matches a
    golden boundary — same stats, byte-identical output — so the
    engine can use it freely without touching the determinism
    guarantee.  The cost is amortized over every cell of the workload;
    uneconomically long golden runs yield empty journals. *)

val runner : ?rejoin:rejoin -> prepared -> tool -> Category.t -> runner

val runner_matches : runner -> prepared -> tool -> Category.t -> bool
(** Whether the runner was built by {!runner} on this same [prepared]
    value (physical equality), tool and category — i.e. whether
    {!run_cell_range} would accept it.  Lets callers that cache runners
    (the scheduler keeps one per domain) validate before reuse. *)

val run_cell_range :
  ?runner:runner ->
  ?on_trial:(int -> Verdict.t -> unit) ->
  ?on_stats:(int -> Verdict.t -> Vm.Outcome.stats -> unit) ->
  ?track_use:bool ->
  config -> prepared -> tool -> Category.t -> first:int -> count:int -> cell
(** Run trials [first .. first+count-1] of a cell.  Trial [k] always
    draws the [k]-th split of the cell's master stream, so disjoint
    ranges computed in any order (or on any domain) merge — via
    {!Verdict.merge} — into exactly the tally a single sequential
    [run_cell] would produce.

    With [config.snapshot] on, the range's targets are planned first
    and executed sorted on a fast-forward machine ([runner], or a fresh
    one), with results re-emitted in trial order; every observable —
    tally, callbacks, stats — is byte-identical to the direct path.
    A supplied [runner] must come from {!runner} on the same [prepared]
    value, tool and category ([Invalid_argument] otherwise); it is
    ignored when [config.snapshot] is off.

    [on_stats] observes each trial's full {!Vm.Outcome.stats} (for the
    diagnosis record stream); [track_use] turns on first-consumer
    classification in the interpreters.  Neither consumes randomness, so
    tallies are unchanged by either. *)

val run_cell :
  ?runner:runner ->
  ?on_trial:(int -> Verdict.t -> unit) ->
  ?on_stats:(int -> Verdict.t -> Vm.Outcome.stats -> unit) ->
  ?track_use:bool ->
  config -> prepared -> tool -> Category.t -> cell
(** [run_cell_range ~first:0 ~count:config.trials]. *)

val run_workload :
  ?on_cell:(cell -> unit) -> ?categories:Category.t list -> config -> Workload.t ->
  prepared * cell list

val run_all :
  ?on_cell:(cell -> unit) -> ?categories:Category.t list -> config -> Workload.t list ->
  cell list

val find : cell list -> workload:string -> tool:tool -> category:Category.t -> cell option

val to_csv : cell list -> string
(** One row per cell.  When every cell used the default model the
    columns are exactly the historical ones; any non-default cell adds
    a [model] column after [category]. *)

(** {1 Exhaustive campaigns (lib/exhaust)}

    Tool-dispatching accessors the exact-campaign planner builds on,
    plus the exact result record.  The weighted-tally convention: the
    Monte-Carlo sampler draws an instance uniformly, then a bit
    uniformly within its width, so fault [(i, b)] has probability
    [1 / (population * width i)].  With [e_unit] the lcm of the distinct
    instance widths in the cell, each fault carries integer weight
    [e_unit / width i] and the whole space weighs
    [population * e_unit]; rates over the weighted tally are the
    sampler's exact outcome probabilities, free of sampling error. *)

val population : prepared -> tool -> Category.t -> int
val golden_output : prepared -> tool -> string

val enumerate : prepared -> tool -> Category.t -> Vm.Fault_space.instance array
(** The exhaustive pre-pass ({!Llfi.enumerate} / {!Pinfi.enumerate}). *)

val inject_bit :
  ?model:Fault_model.t -> runner -> target:int -> bit:int -> Vm.Outcome.stats
(** Deterministic replay of one (instance, bit) fault under [model]
    (default {!Fault_model.Bitflip}); consumes no randomness
    ({!Llfi.inject_bit} / {!Pinfi.inject_bit}). *)

type exact_cell = {
  e_workload : string;
  e_tool : tool;
  e_category : Category.t;
  e_model : Fault_model.t;
      (** the replayed model ({!Fault_model.Bitflip}, a stuck-at model
          or {!Fault_model.Skip} — the enumerable ones) *)
  e_population : int;  (** dynamic instances *)
  e_enumerated : int;  (** individual (instance, bit) faults *)
  e_pruned_dead : int;  (** settled by the dead-destination rule *)
  e_pruned_masked : int;  (** settled by the masked-bit rule *)
  e_pruned_equiv : int;  (** settled by golden-key observation equivalence *)
  e_executed : int;  (** trials actually run *)
  e_unit : int;  (** weight unit (lcm of instance widths) *)
  e_tally : Verdict.tally;  (** weighted; [trials = population * e_unit] *)
  e_bound : float;
      (** certified absolute error bound on the reported rates: [0.]
          when every surviving fault was executed, the Chernoff bound
          of the residual sampler otherwise *)
}

val pruning_ratio : exact_cell -> float
(** enumerated / executed; [infinity] for a fully pruned cell. *)

val exact_sdc_rate : exact_cell -> float
val exact_crash_rate : exact_cell -> float
val exact_benign_rate : exact_cell -> float
val exact_hang_rate : exact_cell -> float
(** Rates among activated weight, as {!Verdict.sdc_rate} etc. *)

val find_exact :
  exact_cell list ->
  workload:string -> tool:tool -> category:Category.t -> exact_cell option

val exact_to_csv : exact_cell list -> string
