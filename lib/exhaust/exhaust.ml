(** Exhaustive and pruned fault-space campaigns: exact outcome rates.

    A Monte-Carlo campaign estimates each cell's crash/SDC/benign rates
    from a sample; this module computes them {e exactly} by covering the
    whole (dynamic instance, bit) space the sampler draws from.  The
    space is first described by one instrumented golden run per cell
    ({!Core.Campaign.enumerate}), then pruned with three sound rules —
    dead destinations, masked bits, and golden-key observation
    equivalence — and only the surviving faults are executed, each
    verdict multiplied by its sampling weight.  Everything is
    deterministic: the survivor list, the shard boundaries and the
    weighted tallies are independent of how many domains execute them.

    All three rules share one soundness argument: the settled fault
    provably leaves execution on the golden path (the corrupted value is
    never read, read only through masks that discard the bit, or read
    once by a consumer whose observable result is unchanged), so the
    run's output and termination equal the fault-free run's.  Faults
    that make execution diverge are never settled or grouped — two
    faults with the {e same} non-golden comparison outcome may still
    differ later, because the divergent path can re-read the corrupted
    register, whose contents differ between them. *)

type config = {
  prune : bool;  (* apply the pruning rules; off = brute force *)
  sample_bound : int;  (* >0: cap executed classes per cell, Chernoff bound *)
  seed : int;  (* residual-sampler stream (sample_bound only) *)
}

let default_config = { prune = true; sample_bound = 0; seed = 2014 }

(* Telemetry (lib/obs): registered up front, weighted by actual counts. *)
let m_cells = Obs.Metrics.counter "exhaust.cells"
let m_enumerated = Obs.Metrics.counter "exhaust.enumerated"
let m_pruned_dead = Obs.Metrics.counter "exhaust.pruned_dead"
let m_pruned_masked = Obs.Metrics.counter "exhaust.pruned_masked"
let m_pruned_equiv = Obs.Metrics.counter "exhaust.pruned_equiv"
let m_executed = Obs.Metrics.counter "exhaust.executed"
let m_sampled_cells = Obs.Metrics.counter "exhaust.sampled_cells"

let rec gcd a b = if b = 0 then a else gcd b (a mod b)
let lcm a b = a / gcd a b * b

(* --- per-fault fate: the pruner's specification --- *)

type fate =
  | Settled of Core.Verdict.t  (* provably this verdict, no execution *)
  | Execute  (* may diverge from the golden path: must run *)

(* A never-read destination differs between the tools only in how the
   sampler reports it: LLFI's def-use selection counts every injection
   as activated, so a silent fault is benign; PINFI's architectural
   read-before-overwrite watch reports it as never activated. *)
let dead_verdict = function
  | Core.Campaign.Llfi_tool -> Core.Verdict.Benign
  | Core.Campaign.Pinfi_tool -> Core.Verdict.Not_activated

let bitflip_fate tool (inst : Vm.Fault_space.instance) ~bit =
  if inst.Vm.Fault_space.reads = 0 then Settled (dead_verdict tool)
  else if Array.length inst.Vm.Fault_space.keys > 0 then
    (* Single-read funnel: the flipped value is consumed exactly once,
       by an instruction whose result is fully described by the key
       (comparison outcome, resulting flag word).  The golden key means
       control stays on the golden path and the corrupted register is
       never read again, so the run is indistinguishable from the
       fault-free one.  A non-golden key diverges and must run: even
       faults sharing a key can differ later, because the divergent
       path may re-read the corrupted register. *)
    if inst.Vm.Fault_space.keys.(bit) = inst.Vm.Fault_space.gold_key then
      Settled Core.Verdict.Benign
    else Execute
  else if Vm.Fault_space.bit_live inst bit then Execute
  else
    (* Every read discards this bit, so all consumers observe golden
       values.  (Under PINFI the register was still read, so the fault
       counts as activated — and benign.) *)
    Settled Core.Verdict.Benign

(* The exactly enumerable models: one fault per (instance, bit) — or
   per instance for [Skip] — matching the sampler's draw.  [Multi_bit]
   spans width^n bit tuples and [Load_value] the whole value range;
   neither has a per-instance space an exact campaign can cover. *)
let enumerable (model : Core.Fault_model.t) =
  match model with
  | Core.Fault_model.Bitflip | Core.Fault_model.Stuck_at_0
  | Core.Fault_model.Stuck_at_1 | Core.Fault_model.Skip ->
    true
  | Core.Fault_model.Multi_bit _ | Core.Fault_model.Load_value -> false

let require_enumerable ~who model =
  if not (enumerable model) then
    invalid_arg
      (Printf.sprintf
         "%s: fault model %s cannot be enumerated exactly (use a Monte-Carlo \
          campaign)"
         who (Core.Fault_model.name model))

let fate ?(model = Core.Fault_model.Bitflip) tool
    (inst : Vm.Fault_space.instance) ~bit =
  require_enumerable ~who:"Exhaust.fate" model;
  match model with
  | Core.Fault_model.Skip ->
    (* One fault per instance (no bit space): restoring an unread
       destination provably changes nothing; anything else must run. *)
    if inst.Vm.Fault_space.reads = 0 then Settled (dead_verdict tool)
    else Execute
  | Core.Fault_model.Stuck_at_0 | Core.Fault_model.Stuck_at_1 ->
    let b = model = Core.Fault_model.Stuck_at_1 in
    if inst.Vm.Fault_space.reads = 0 then Settled (dead_verdict tool)
    else if Vm.Fault_space.gold_bit inst bit = b then
      (* The stuck value equals the golden bit: the destination is
         written unchanged, so the run is the golden run.  (Under PINFI
         the register is still read, hence activated — and benign.) *)
      Settled Core.Verdict.Benign
    else
      (* Forcing a bit against its golden value is exactly a flip of
         that bit, so the bitflip rules (and the enumeration facts they
         rest on) carry over unchanged. *)
      bitflip_fate tool inst ~bit
  | Core.Fault_model.Bitflip | Core.Fault_model.Multi_bit _
  | Core.Fault_model.Load_value ->
    bitflip_fate tool inst ~bit

(* --- planning: classify the whole space without executing --- *)

(* A surviving fault (target, bit) and its weight in the tally; weights
   exceed the per-bit unit only when the residual sampler reassigns
   unexecuted mass. *)
type cls = { x_target : int; x_bit : int; x_weight : int }

type plan = {
  p_unit : int;  (* lcm of instance widths: integer weight scale *)
  p_enumerated : int;
  p_dead : int;
  p_masked : int;
  p_equiv : int;
  p_pretally : Core.Verdict.tally;  (* weighted verdicts settled a priori *)
  p_survivors : cls array;  (* ascending (target, bit) *)
}

(* Classifies every fault exactly as [fate] does (the QCheck soundness
   property replays what this settles); batch form so a whole instance
   is dispatched at once.

   Per-model bit spaces: [Bitflip] and the stuck-at models draw one bit
   per instance (space = width; a stuck bit that equals its golden
   value joins the masked-bit bucket), [Skip] draws nothing (space = a
   single fault per instance, so the weight unit is 1). *)
let plan_cell ?(model = Core.Fault_model.Bitflip) config tool
    (instances : Vm.Fault_space.instance array) =
  require_enumerable ~who:"Exhaust.plan_cell" model;
  let skip = model = Core.Fault_model.Skip in
  let stuck =
    match model with
    | Core.Fault_model.Stuck_at_0 -> Some false
    | Core.Fault_model.Stuck_at_1 -> Some true
    | _ -> None
  in
  let unit_ =
    if skip then 1
    else
      Array.fold_left
        (fun acc (i : Vm.Fault_space.instance) ->
          lcm acc i.Vm.Fault_space.width)
        1 instances
  in
  let tally = Core.Verdict.fresh_tally () in
  let dead = ref 0 and masked = ref 0 and equiv = ref 0 in
  let enumerated = ref 0 in
  let survivors = ref [] in
  let dv = dead_verdict tool in
  Array.iteri
    (fun target (inst : Vm.Fault_space.instance) ->
      let w = if skip then 1 else inst.Vm.Fault_space.width in
      let wt = unit_ / w in
      enumerated := !enumerated + w;
      if not config.prune then
        for bit = 0 to w - 1 do
          survivors := { x_target = target; x_bit = bit; x_weight = wt }
            :: !survivors
        done
      else if inst.Vm.Fault_space.reads = 0 then begin
        dead := !dead + w;
        Core.Verdict.add_n tally dv (w * wt)
      end
      else if skip then
        survivors := { x_target = target; x_bit = 0; x_weight = wt }
          :: !survivors
      else
        for bit = 0 to w - 1 do
          match stuck with
          | Some b when Vm.Fault_space.gold_bit inst bit = b ->
            (* stuck value = golden bit: the write is unchanged *)
            incr masked;
            Core.Verdict.add_n tally Core.Verdict.Benign wt
          | _ ->
            if Array.length inst.Vm.Fault_space.keys > 0 then
              if inst.Vm.Fault_space.keys.(bit) = inst.Vm.Fault_space.gold_key
              then begin
                incr equiv;
                Core.Verdict.add_n tally Core.Verdict.Benign wt
              end
              else
                survivors := { x_target = target; x_bit = bit; x_weight = wt }
                  :: !survivors
            else if Vm.Fault_space.bit_live inst bit then
              survivors := { x_target = target; x_bit = bit; x_weight = wt }
                :: !survivors
            else begin
              incr masked;
              Core.Verdict.add_n tally Core.Verdict.Benign wt
            end
        done)
    instances;
  {
    p_unit = unit_;
    p_enumerated = !enumerated;
    p_dead = !dead;
    p_masked = !masked;
    p_equiv = !equiv;
    p_pretally = tally;
    p_survivors = Array.of_list (List.rev !survivors);
  }

(* --- bounded residual sampling (Chernoff-certified) --- *)

let sample_delta = 0.01 (* the certified bound holds with 99% confidence *)

(* Weighted sampling with replacement of [k] faults from the survivor
   classes, deterministic in the exhaust seed.  Survivor mass is
   reassigned to the hit classes by cumulative rounding, so the total
   weight (and hence the tally denominator) stays exact. *)
let sample_survivors ?(model = Core.Fault_model.Bitflip) config ~workload
    ~tool ~category (survivors : cls array) =
  let k = config.sample_bound in
  let n = Array.length survivors in
  let cumulative = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    cumulative.(i + 1) <- cumulative.(i) + survivors.(i).x_weight
  done;
  let mass = cumulative.(n) in
  let rng =
    (* the campaign keying machinery, salted so the residual sampler
       never shares a stream with the Monte-Carlo cell of the same
       seed; carrying [model] keys each model's residual sample
       independently (and keeps the default stream byte-identical) *)
    Core.Campaign.cell_rng
      { Core.Campaign.default_config with seed = config.seed; model }
      ~workload:("exhaust:" ^ workload) ~tool ~category
  in
  let hits = Array.make n 0 in
  for _ = 1 to k do
    let x = Int64.to_int (Support.Rng.int64_bound rng (Int64.of_int mass)) in
    (* binary search: the class whose cumulative range contains x *)
    let lo = ref 0 and hi = ref n in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if cumulative.(mid) <= x then lo := mid else hi := mid
    done;
    hits.(!lo) <- hits.(!lo) + 1
  done;
  let out = ref [] in
  let cum_hits = ref 0 in
  let assigned_before = ref 0 in
  for i = 0 to n - 1 do
    if hits.(i) > 0 then begin
      cum_hits := !cum_hits + hits.(i);
      let assigned_now = mass * !cum_hits / k in
      let weight = assigned_now - !assigned_before in
      assigned_before := assigned_now;
      if weight > 0 then out := { survivors.(i) with x_weight = weight } :: !out
    end
  done;
  (Array.of_list (List.rev !out), mass)

(* --- execution: one trial per surviving class --- *)

let execute_range ?model (p : Core.Campaign.prepared) tool category
    (to_run : cls array) lo hi =
  let r = Core.Campaign.runner p tool category in
  let golden = Core.Campaign.golden_output p tool in
  let tally = Core.Verdict.fresh_tally () in
  for k = lo to hi - 1 do
    let c = to_run.(k) in
    let stats =
      Core.Campaign.inject_bit ?model r ~target:c.x_target ~bit:c.x_bit
    in
    let v = Core.Verdict.of_run ~golden_output:golden stats in
    Core.Verdict.add_n tally v c.x_weight
  done;
  tally

let execute ?model ?pool p tool category (to_run : cls array) =
  let n = Array.length to_run in
  if n = 0 then Core.Verdict.fresh_tally ()
  else begin
    let shards =
      match pool with
      | Some pl -> max 1 (min (Engine.Pool.size pl) n)
      | None -> 1
    in
    let ranges =
      Array.init shards (fun s -> (n * s / shards, n * (s + 1) / shards))
    in
    let tallies =
      match pool with
      | Some pl when shards > 1 ->
        Engine.Pool.map pl
          (fun (lo, hi) -> execute_range ?model p tool category to_run lo hi)
          ranges
      | _ ->
        Array.map
          (fun (lo, hi) -> execute_range ?model p tool category to_run lo hi)
          ranges
    in
    (* contiguous shards merged in order: the summed tally is the same
       whatever the shard count, so output is byte-identical across
       [--jobs] *)
    Array.fold_left Core.Verdict.merge (Core.Verdict.fresh_tally ()) tallies
  end

(* --- one exact cell --- *)

let run_cell ?(model = Core.Fault_model.Bitflip) ?pool config
    (p : Core.Campaign.prepared) tool category =
  require_enumerable ~who:"Exhaust.run_cell" model;
  let workload = p.Core.Campaign.workload.Core.Workload.name in
  Obs.Trace.span "exhaust-cell"
    ~args:
      [ ("workload", workload); ("tool", Core.Campaign.tool_name tool);
        ("category", Core.Category.name category);
        ("model", Core.Fault_model.name model) ]
  @@ fun () ->
  let instances =
    Obs.Trace.span "enumerate" @@ fun () ->
    Core.Campaign.enumerate p tool category
  in
  let population = Core.Campaign.population p tool category in
  if Array.length instances <> population then
    invalid_arg
      (Printf.sprintf
         "Exhaust.run_cell: enumeration found %d instances where the profile \
          counted %d"
         (Array.length instances) population);
  let plan =
    Obs.Trace.span "plan" @@ fun () -> plan_cell ~model config tool instances
  in
  let nclasses = Array.length plan.p_survivors in
  let to_run, sampled_mass =
    if config.sample_bound > 0 && nclasses > config.sample_bound then begin
      Obs.Metrics.incr m_sampled_cells;
      let sampled, mass =
        Obs.Trace.span "sample" @@ fun () ->
        sample_survivors ~model config ~workload ~tool ~category
          plan.p_survivors
      in
      (sampled, Some mass)
    end
    else (plan.p_survivors, None)
  in
  let exec_tally =
    Obs.Trace.span "execute" @@ fun () ->
    execute ~model ?pool p tool category to_run
  in
  let tally = Core.Verdict.merge plan.p_pretally exec_tally in
  let bound =
    match sampled_mass with
    | None -> 0.0
    | Some mass ->
      let activated = Core.Verdict.activated tally in
      if activated = 0 then 0.0
      else
        float_of_int mass /. float_of_int activated
        *. sqrt (log (2.0 /. sample_delta)
                 /. (2.0 *. float_of_int config.sample_bound))
  in
  let executed = Array.length to_run in
  Obs.Metrics.incr ~by:plan.p_enumerated m_enumerated;
  Obs.Metrics.incr ~by:plan.p_dead m_pruned_dead;
  Obs.Metrics.incr ~by:plan.p_masked m_pruned_masked;
  Obs.Metrics.incr ~by:plan.p_equiv m_pruned_equiv;
  Obs.Metrics.incr ~by:executed m_executed;
  Obs.Metrics.incr m_cells;
  {
    Core.Campaign.e_workload = workload;
    e_tool = tool;
    e_category = category;
    e_model = model;
    e_population = population;
    e_enumerated = plan.p_enumerated;
    e_pruned_dead = plan.p_dead;
    e_pruned_masked = plan.p_masked;
    e_pruned_equiv = plan.p_equiv;
    e_executed = executed;
    e_unit = plan.p_unit;
    e_tally = tally;
    e_bound = bound;
  }

(* --- full grid --- *)

type result = {
  prepared : Core.Campaign.prepared list;
  cells : Core.Campaign.exact_cell list;  (* workload x tool x category *)
  resumed : int;
}

let run ?(jobs = 1) ?journal ?(resume = false)
    ?(tools = [ Core.Campaign.Llfi_tool; Core.Campaign.Pinfi_tool ])
    ?(categories = Core.Category.all) ?on_cell config
    (campaign_config : Core.Campaign.config) workloads =
  let model = campaign_config.Core.Campaign.model in
  require_enumerable ~who:"Exhaust.run" model;
  let grid =
    Engine.Journal.grid
      ~workloads:(List.map (fun (w : Core.Workload.t) -> w.Core.Workload.name) workloads)
      ~tools ~categories
  in
  let journal, existing =
    match journal with
    | None -> (None, [])
    | Some path ->
      let j, cells =
        Engine.Journal.xstart ~model ~path ~resume ~grid ~seed:config.seed
          ~prune:config.prune ~sample_bound:config.sample_bound ()
      in
      (Some j, cells)
  in
  let pool = if jobs > 1 then Some (Engine.Pool.create ~size:jobs ()) else None in
  Fun.protect
    ~finally:(fun () ->
      (match pool with Some pl -> Engine.Pool.shutdown pl | None -> ());
      match journal with Some j -> Engine.Journal.close j | None -> ())
  @@ fun () ->
  let resumed = ref 0 in
  let prepared =
    List.map (fun w -> Core.Campaign.prepare campaign_config w) workloads
  in
  let cells =
    List.concat_map
      (fun (p : Core.Campaign.prepared) ->
        List.concat_map
          (fun tool ->
            List.map
              (fun category ->
                let name = p.Core.Campaign.workload.Core.Workload.name in
                match
                  Core.Campaign.find_exact existing ~workload:name ~tool
                    ~category
                with
                | Some cell ->
                  incr resumed;
                  (match on_cell with Some f -> f cell | None -> ());
                  cell
                | None ->
                  let cell = run_cell ~model ?pool config p tool category in
                  (match journal with
                  | Some j -> Engine.Journal.xrecord j cell
                  | None -> ());
                  (match on_cell with Some f -> f cell | None -> ());
                  cell)
              categories)
          tools)
      prepared
  in
  { prepared; cells; resumed = !resumed }
