(** Exhaustive and pruned fault-space campaigns: exact outcome rates.

    Where a Monte-Carlo campaign ({!Core.Campaign}, {!Engine.Scheduler})
    estimates each cell's crash/SDC/benign rates from N sampled trials,
    this module computes the rates {e exactly}: an instrumented golden
    run describes every (dynamic instance, bit) fault the sampler could
    draw ({!Core.Campaign.enumerate}), three sound pruning rules settle
    most of them without execution, and each surviving fault runs once
    via the snapshot/fast-forward path, its verdict multiplied by its
    sampling weight.

    The pruning rules, each a machine-checked implication of the
    enumeration facts ({!Vm.Fault_space.instance}):

    - {e dead destination} — the corrupted value is never read, so the
      run is indistinguishable from golden (benign under LLFI's
      always-activated selection, never-activated under PINFI's
      architectural watch);
    - {e masked bit} — every consumer provably discards the bit
      (truncation, masking and, shifts), so all downstream values are
      golden;
    - {e golden-key observation equivalence} — the value is consumed
      exactly once, by an instruction whose result is captured by a
      small key (comparison outcome, resulting flag word); a fault
      whose key equals the golden key leaves control on the golden path
      with a never-again-read register, hence benign.

    All three rules settle only faults that provably keep execution on
    the golden path.  Faults that diverge are never grouped: two faults
    sharing the same {e non}-golden key may still end differently,
    because the divergent path can re-read the corrupted register,
    whose contents differ between them.

    Everything is deterministic: the survivor list, shard boundaries
    and weighted tallies do not depend on the worker count, so results
    are byte-identical for any [--jobs]. *)

type config = {
  prune : bool;
      (** apply the pruning rules; [false] executes every fault
          (brute force — the oracle the tests compare against) *)
  sample_bound : int;
      (** when positive, cells whose survivor count exceeds the bound
          are finished by a deterministic weighted sampler instead, and
          the cell carries a Chernoff-certified error bound; [0]
          executes every surviving fault (fully exact) *)
  seed : int;  (** residual-sampler stream; unused when fully exact *)
}

val default_config : config
(** Pruning on, no sample bound, seed 2014. *)

(** {1 The pruner's specification} *)

(** What the planner does with one (instance, bit) fault. *)
type fate =
  | Settled of Core.Verdict.t
      (** provably this verdict; never executed *)
  | Execute  (** may diverge from the golden path: must run *)

val enumerable : Core.Fault_model.t -> bool
(** Whether a fault model has a finite per-instance space an exact
    campaign can cover: {!Core.Fault_model.Bitflip}, the stuck-at
    models (one bit each) and {!Core.Fault_model.Skip} (one fault per
    instance).  [Multi_bit] spans width{^ n} bit tuples and
    [Load_value] the whole value range — both are Monte-Carlo-only. *)

val fate :
  ?model:Core.Fault_model.t ->
  Core.Campaign.tool ->
  Vm.Fault_space.instance ->
  bit:int ->
  fate
(** The per-fault pruning decision, stated independently of the batch
    planner; the property tests replay [Settled] faults straight-line
    and check the prediction.  Model-aware ([?model], default
    {!Core.Fault_model.Bitflip}): a stuck-at fault whose stuck value
    equals the golden bit is settled benign (the write is unchanged),
    a stuck bit that differs from its golden value follows the bitflip
    rules (it {e is} a flip of that bit), and a [Skip] fault — [bit] is
    ignored — is settled only when the destination is never read.
    @raise Invalid_argument for non-{!enumerable} models. *)

(** {1 Running} *)

val run_cell :
  ?model:Core.Fault_model.t ->
  ?pool:Engine.Pool.t ->
  config ->
  Core.Campaign.prepared ->
  Core.Campaign.tool ->
  Core.Category.t ->
  Core.Campaign.exact_cell
(** One exact cell: enumerate, prune, execute the surviving faults
    (sharded across [pool] when given — contiguous deterministic
    shards, merged in order), and tally by weight.  The weighted tally
    covers the whole space: [e_tally.trials = population * e_unit]
    (for {!Core.Fault_model.Skip}, [e_unit = 1] — one fault per
    instance).
    @raise Invalid_argument if the enumeration pre-pass disagrees with
    the profiling pass about the cell population, or for a
    non-{!enumerable} [model]. *)

type result = {
  prepared : Core.Campaign.prepared list;  (** one per workload *)
  cells : Core.Campaign.exact_cell list;
      (** canonical order: workload x tool x category *)
  resumed : int;  (** cells restored from the journal, not re-run *)
}

val run :
  ?jobs:int ->
  ?journal:string ->
  ?resume:bool ->
  ?tools:Core.Campaign.tool list ->
  ?categories:Core.Category.t list ->
  ?on_cell:(Core.Campaign.exact_cell -> unit) ->
  config ->
  Core.Campaign.config ->
  Core.Workload.t list ->
  result
(** The exact-campaign grid.  [campaign_config] supplies workload
    preparation (backend and injector configs) and the fault model
    ([campaign_config.model], which must be {!enumerable}); trial
    counts and the campaign seed play no role.  [jobs] shards each
    cell's survivor execution over a pool; [journal]/[resume]
    checkpoint completed cells ({!Engine.Journal.xstart}, whose header
    binds the model).  Cells are emitted in canonical order regardless
    of journal state. *)
