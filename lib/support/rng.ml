type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let of_int seed = create (Int64.of_int seed)

(* SplitMix64 finalizer: two xor-shift-multiply rounds. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = next_int64 t in
  (* Mix once more so parent and child streams do not share prefixes. *)
  { state = mix seed }

let copy t = { state = t.state }

let advance t n =
  if n < 0 then invalid_arg "Rng.advance: negative count";
  (* Each next_int64/split adds one golden gamma to the state, so n draws
     can be skipped in O(1). *)
  t.state <- Int64.add t.state (Int64.mul (Int64.of_int n) golden_gamma)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling on the top 62 bits keeps the draw exactly uniform. *)
  let rec draw () =
    let bits = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
    let value = bits mod bound in
    if bits - value + (bound - 1) < 0 then draw () else value
  in
  draw ()

let int64_bound t bound =
  if Int64.compare bound 0L <= 0 then
    invalid_arg "Rng.int64_bound: bound must be positive";
  let rec draw () =
    let bits = Int64.shift_right_logical (next_int64 t) 1 in
    let value = Int64.rem bits bound in
    if Int64.compare (Int64.add (Int64.sub bits value) (Int64.sub bound 1L)) 0L < 0
    then draw ()
    else value
  in
  draw ()

let float t =
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let bool t = Int64.compare (Int64.logand (next_int64 t) 1L) 0L <> 0

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
