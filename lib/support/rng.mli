(** Deterministic splittable pseudo-random number generator (SplitMix64).

    Every source of randomness in the project flows through this module so
    that fault-injection campaigns are bit-reproducible given a seed.  The
    generator is the SplitMix64 construction of Steele, Lea and Flood, which
    has a 64-bit state, passes BigCrush, and supports cheap splitting for
    independent streams (one stream per injection run). *)

type t

val create : int64 -> t
(** [create seed] makes a fresh generator from a 64-bit seed. *)

val of_int : int -> t
(** [of_int seed] is [create (Int64.of_int seed)]. *)

val split : t -> t
(** [split t] advances [t] and returns a statistically independent
    generator.  Used to give each fault-injection trial its own stream. *)

val copy : t -> t
(** [copy t] duplicates the current state without advancing it. *)

val advance : t -> int -> unit
(** [advance t n] skips exactly [n] draws in O(1): the state afterwards
    equals the state after [n] calls to {!next_int64} (or {!split}).
    This lets a consumer of one draw per trial jump straight to trial
    [n]'s position — the basis for splitting a campaign cell into
    trial chunks without replaying the stream.  [n] must be
    non-negative. *)

val next_int64 : t -> int64
(** [next_int64 t] returns 64 uniformly random bits. *)

val int : t -> int -> int
(** [int t bound] returns a uniform value in [\[0, bound)].  [bound] must be
    positive; uses rejection sampling so the distribution is exact. *)

val int64_bound : t -> int64 -> int64
(** [int64_bound t bound] returns a uniform [int64] in [\[0, bound)]. *)

val float : t -> float
(** [float t] returns a uniform float in [\[0, 1)]. *)

val bool : t -> bool
(** [bool t] returns a uniform boolean. *)

val shuffle : t -> 'a array -> unit
(** [shuffle t a] permutes [a] in place, Fisher-Yates. *)
