(** Per-job service journal: the crash-recovery log of [fi serve].

    Line-delimited plain text, in the style of {!Engine.Journal}: one
    header line binding the file to the server's result-affecting
    configuration (snapshot mode), then for every admitted job a [job]
    line (spec + shard size), a [shard] line per completed shard tally,
    and finally a [done] (digest) or [fail] line.  Every append is
    flushed, so a SIGKILLed server loses at most the shards in flight;
    on restart, jobs with no terminal line are re-admitted with their
    journaled shards pre-filled — only the missing shards re-run, and
    the deterministic per-trial RNG streams make the merged result
    byte-identical to an uninterrupted (or offline) run.

    Unparseable lines (a crash mid-append) are skipped on load, and a
    header mismatch is refused, exactly as {!Engine.Journal}. *)

type shard = {
  s_tool : Core.Campaign.tool;
  s_category : Core.Category.t;
  s_first : int;
  s_count : int;
  s_population : int;
  s_tally : Core.Verdict.tally;
}

type entry = {
  e_id : int;
  e_chunk : int;  (** shard size the job was planned with *)
  e_job : Wire.job;
  mutable e_shards : shard list;  (** completed, in journal order *)
  mutable e_done : bool;
  mutable e_failed : bool;
}

type t

val start : path:string -> snapshot:bool -> t * entry list
(** Open (or create) the journal.  An existing file is validated and
    loaded — the returned entries are every journaled job, terminal or
    not, in id order — and subsequent records append.
    @raise Invalid_argument if the existing header does not match. *)

val record_job : t -> id:int -> chunk:int -> Wire.job -> unit
val record_shard : t -> id:int -> shard -> unit
val record_done : t -> id:int -> digest:string -> unit
val record_fail : t -> id:int -> unit
val close : t -> unit

(** {2 Plumbing, exposed for tests} *)

val job_line : id:int -> chunk:int -> Wire.job -> string
val shard_line : id:int -> shard -> string
val load : path:string -> snapshot:bool -> entry list
