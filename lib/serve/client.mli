(** Blocking client for the campaign service, plus a multiplexed load
    generator.

    {!submit} does more than transport: it reassembles the streamed
    verdict batches client-side — per cell, the batches must partition
    [0 .. trials-1] exactly once, agree on the population, and merge
    (via {!Core.Verdict.merge}) into cells whose CSV is byte-equal to
    the server's [Job_done] payload.  A lost or duplicated batch is a
    hard error, which is the production check behind the drain test. *)

type addr = Unix_sock of string | Tcp of string * int

type t

val connect : addr -> t
(** @raise Unix.Unix_error if the server is not reachable. *)

val close : t -> unit

val send : t -> Wire.client_msg -> unit

val recv : t -> Wire.server_msg
(** Next server message, blocking.
    @raise Failure on EOF or a malformed frame. *)

val hello : t -> name:string -> string * int
(** Handshake: [Hello] -> the server's name and pool size. *)

type result = {
  r_job : int;  (** server-assigned job id *)
  r_csv : string;
  r_digest : string;
  r_batches : int;  (** verdict batches streamed *)
}

val submit :
  t -> ?on_batch:(Wire.batch -> unit) -> Wire.job -> (result, string) Stdlib.result
(** Submit and block until [Job_done], verifying stream integrity (see
    above).  [Error] carries the server's message, or the description
    of an integrity violation. *)

val shutdown : t -> drain:bool -> unit
(** Request shutdown and wait for the server's [Bye] (with [drain],
    that means every in-flight job has finished and streamed). *)

type load_stats = {
  l_jobs : int;
  l_ok : int;
  l_failed : int;
  l_wall : float;  (** seconds *)
  l_jobs_per_s : float;
  l_mean_ms : float;
  l_p50_ms : float;
  l_p99_ms : float;
}

val loadgen :
  addr -> jobs:int -> concurrency:int -> job_of:(int -> Wire.job) -> load_stats
(** Drive the server with [jobs] submissions over [concurrency]
    connections (one outstanding job per connection, multiplexed over
    select), measuring per-job completion latency.  [job_of i] builds
    the [i]-th job — vary the seed to defeat the server's cell cache
    and measure real execution. *)
