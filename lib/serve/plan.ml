(* Pure admission planning; see the .mli. *)

type cell_id = {
  p_workload : string;
  p_tool : Core.Campaign.tool;
  p_category : Core.Category.t;
  p_model : Core.Fault_model.t;
  p_trials : int;
  p_seed : int;
  p_chunk : int;
}

let cells (j : Wire.job) =
  List.concat_map
    (fun tool -> List.map (fun category -> (tool, category)) j.Wire.j_categories)
    j.Wire.j_tools

(* One shard per domain for a typical cell, but never more than 50
   trials per shard (streaming granularity and checkpoint granularity
   are the same thing: a killed server loses at most one shard per
   in-flight cell). *)
let default_chunk ~pool ~trials =
  if trials <= 1 then 1
  else max 1 (min 50 ((trials + pool - 1) / max 1 pool))

let shards ~chunk ~trials =
  if chunk <= 0 then invalid_arg "Plan.shards: chunk must be positive";
  if trials <= 0 then [ (0, 0) ]
  else
    List.init
      ((trials + chunk - 1) / chunk)
      (fun k -> (k * chunk, min chunk (trials - (k * chunk))))

let cell_id ~workload ~tool ~category ~model ~trials ~seed ~chunk =
  {
    p_workload = workload;
    p_tool = tool;
    p_category = category;
    p_model = model;
    p_trials = trials;
    p_seed = seed;
    p_chunk = chunk;
  }

let config_for ~(base : Core.Campaign.config) ~model ~trials ~seed =
  { base with Core.Campaign.model; trials; seed }

let max_trials = 10_000_000

let validate (j : Wire.job) =
  match Workloads.find j.Wire.j_workload with
  | None -> Error (Printf.sprintf "unknown workload %S" j.Wire.j_workload)
  | Some w ->
    if j.Wire.j_trials < 0 then Error "negative trial count"
    else if j.Wire.j_trials > max_trials then
      Error (Printf.sprintf "trial count %d exceeds %d" j.Wire.j_trials max_trials)
    else if j.Wire.j_tools = [] then Error "empty tool list"
    else if j.Wire.j_categories = [] then Error "empty category list"
    else Ok w
