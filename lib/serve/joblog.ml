(* Line-delimited service journal; see the .mli. *)

type shard = {
  s_tool : Core.Campaign.tool;
  s_category : Core.Category.t;
  s_first : int;
  s_count : int;
  s_population : int;
  s_tally : Core.Verdict.tally;
}

type entry = {
  e_id : int;
  e_chunk : int;
  e_job : Wire.job;
  mutable e_shards : shard list;
  mutable e_done : bool;
  mutable e_failed : bool;
}

type t = { oc : out_channel; mutex : Mutex.t; mutable closed : bool }

(* v2 added the fault-model token to job lines; v1 journals are
   rejected by the header check instead of silently dropping jobs. *)
let header ~snapshot =
  Printf.sprintf "# fi-serve-journal v2 snapshot=%b" snapshot

let comma f xs = String.concat "," (List.map f xs)

(* The output path is the only free-form field, so it goes last and the
   parser rejoins the remaining tokens; "-" stands for none. *)
let job_line ~id ~chunk (j : Wire.job) =
  Printf.sprintf "job %d %d %d %d %s %s %s %s %s" id j.Wire.j_trials
    j.Wire.j_seed chunk
    (Core.Fault_model.name j.Wire.j_model)
    (comma Core.Campaign.tool_name j.Wire.j_tools)
    (comma Core.Category.name j.Wire.j_categories)
    j.Wire.j_workload
    (match j.Wire.j_out with None -> "-" | Some p -> p)

let shard_line ~id (s : shard) =
  let t = s.s_tally in
  Printf.sprintf "shard %d %s %s %d %d %d %d %d %d %d %d %d %d" id
    (Core.Campaign.tool_name s.s_tool)
    (Core.Category.name s.s_category)
    s.s_first s.s_count s.s_population t.Core.Verdict.trials t.benign t.sdc
    t.crash t.hang t.not_activated t.not_injected

let opt_all xs = if List.exists Option.is_none xs then None else Some (List.map Option.get xs)

let parse_names of_name s =
  opt_all (List.map of_name (String.split_on_char ',' s))

let parse_job tokens =
  match tokens with
  | id :: trials :: seed :: chunk :: model :: tools :: cats :: workload :: rest
    -> (
    match
      ( int_of_string_opt id,
        int_of_string_opt trials,
        int_of_string_opt seed,
        int_of_string_opt chunk,
        Core.Fault_model.of_name model,
        parse_names Core.Campaign.tool_of_name tools,
        parse_names Core.Category.of_string cats )
    with
    | ( Some id,
        Some trials,
        Some seed,
        Some chunk,
        Some model,
        Some tools,
        Some cats ) ->
      let out =
        match rest with [] | [ "-" ] -> None | l -> Some (String.concat " " l)
      in
      Some
        ( id,
          chunk,
          {
            Wire.j_workload = workload;
            j_tools = tools;
            j_categories = cats;
            j_model = model;
            j_trials = trials;
            j_seed = seed;
            j_out = out;
          } )
    | _ -> None)
  | _ -> None

let parse_shard tokens =
  match tokens with
  | [ id; tool; cat; first; count; population; trials; benign; sdc; crash;
      hang; not_activated; not_injected ] -> (
    match
      ( int_of_string_opt id,
        Core.Campaign.tool_of_name tool,
        Core.Category.of_string cat,
        opt_all
          (List.map int_of_string_opt
             [ first; count; population; trials; benign; sdc; crash; hang;
               not_activated; not_injected ]) )
    with
    | ( Some id,
        Some s_tool,
        Some s_category,
        Some
          [ s_first; s_count; s_population; trials; benign; sdc; crash; hang;
            not_activated; not_injected ] ) ->
      Some
        ( id,
          {
            s_tool;
            s_category;
            s_first;
            s_count;
            s_population;
            s_tally =
              {
                Core.Verdict.trials;
                benign;
                sdc;
                crash;
                hang;
                not_activated;
                not_injected;
              };
          } )
    | _ -> None)
  | _ -> None

let load ~path ~snapshot =
  In_channel.with_open_text path (fun ic ->
      (match In_channel.input_line ic with
      | Some first when String.equal (String.trim first) (header ~snapshot) -> ()
      | Some first ->
        invalid_arg
          (Printf.sprintf
             "Joblog.load: %s was written by a differently-configured server.\n\
             \  journal:    %s\n\
             \  invocation: %s\n\
              Restart with the original configuration, or use a fresh \
              journal path."
             path (String.trim first) (header ~snapshot))
      | None -> ());
      let entries : (int, entry) Hashtbl.t = Hashtbl.create 16 in
      let order = ref [] in
      let rec go () =
        match In_channel.input_line ic with
        | None -> ()
        | Some line ->
          (* Skip anything unparseable: a line truncated by a SIGKILL
             mid-append must not poison the rest of the journal. *)
          (match String.split_on_char ' ' (String.trim line) with
          | "job" :: rest -> (
            match parse_job rest with
            | Some (id, chunk, job) when not (Hashtbl.mem entries id) ->
              Hashtbl.replace entries id
                {
                  e_id = id;
                  e_chunk = chunk;
                  e_job = job;
                  e_shards = [];
                  e_done = false;
                  e_failed = false;
                };
              order := id :: !order
            | _ -> ())
          | "shard" :: rest -> (
            match parse_shard rest with
            | Some (id, shard) -> (
              match Hashtbl.find_opt entries id with
              | Some e -> e.e_shards <- e.e_shards @ [ shard ]
              | None -> ())
            | None -> ())
          | [ "done"; id; _digest ] -> (
            match Option.bind (int_of_string_opt id) (Hashtbl.find_opt entries) with
            | Some e -> e.e_done <- true
            | None -> ())
          | [ "fail"; id ] -> (
            match Option.bind (int_of_string_opt id) (Hashtbl.find_opt entries) with
            | Some e -> e.e_failed <- true
            | None -> ())
          | _ -> ());
          go ()
      in
      go ();
      List.rev_map (Hashtbl.find entries) !order)

let start ~path ~snapshot =
  let existing =
    if Sys.file_exists path then load ~path ~snapshot else []
  in
  let oc =
    if existing <> [] then open_out_gen [ Open_append; Open_creat ] 0o644 path
    else begin
      let oc = open_out path in
      output_string oc (header ~snapshot);
      output_char oc '\n';
      flush oc;
      oc
    end
  in
  ({ oc; mutex = Mutex.create (); closed = false }, existing)

let m_flushes = Obs.Metrics.counter "serve.journal.flushes"

let record_line t line =
  Mutex.lock t.mutex;
  if not t.closed then begin
    output_string t.oc line;
    output_char t.oc '\n';
    flush t.oc;
    Obs.Metrics.incr m_flushes
  end;
  Mutex.unlock t.mutex

let record_job t ~id ~chunk job = record_line t (job_line ~id ~chunk job)
let record_shard t ~id shard = record_line t (shard_line ~id shard)
let record_done t ~id ~digest = record_line t (Printf.sprintf "done %d %s" id digest)
let record_fail t ~id = record_line t (Printf.sprintf "fail %d" id)

let close t =
  Mutex.lock t.mutex;
  if not t.closed then begin
    t.closed <- true;
    close_out t.oc
  end;
  Mutex.unlock t.mutex
