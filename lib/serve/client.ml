(* Client side of the campaign service; see the .mli. *)

type addr = Unix_sock of string | Tcp of string * int

type t = { fd : Unix.file_descr; mutable rbuf : string; mutable open_ : bool }

let sockaddr = function
  | Unix_sock path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)
  | Tcp (host, port) ->
    let a =
      try Unix.inet_addr_of_string host
      with Failure _ -> (Unix.gethostbyname host).h_addr_list.(0)
    in
    (Unix.PF_INET, Unix.ADDR_INET (a, port))

let connect addr =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let domain, sa = sockaddr addr in
  let fd = Unix.socket domain SOCK_STREAM 0 in
  (try Unix.connect fd sa
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd; rbuf = ""; open_ = true }

let close t =
  if t.open_ then begin
    t.open_ <- false;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let write_all fd s =
  let n = String.length s in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write_substring fd s !off (n - !off)
  done

let send t msg = write_all t.fd (Wire.encode_client msg)

let recv t =
  let buf = Bytes.create 65536 in
  let rec go () =
    match Wire.decode_server t.rbuf with
    | Wire.Got (msg, n) ->
      t.rbuf <- String.sub t.rbuf n (String.length t.rbuf - n);
      msg
    | Wire.Bad m -> failwith ("fi-serve protocol error: " ^ m)
    | Wire.Need_more -> (
      match Unix.read t.fd buf 0 (Bytes.length buf) with
      | 0 -> failwith "connection closed by server"
      | n ->
        t.rbuf <- t.rbuf ^ Bytes.sub_string buf 0 n;
        go ())
  in
  go ()

let hello t ~name =
  send t (Wire.Hello { client = name });
  match recv t with
  | Wire.Welcome { server; pool } -> (server, pool)
  | _ -> failwith "fi-serve: expected Welcome"

type result = { r_job : int; r_csv : string; r_digest : string; r_batches : int }

(* Reassemble one cell's batches: sorted by [first] they must tile
   [0 .. trials-1] exactly (trials = 0: the single empty shard), agree
   on the population, and merge into the cell tally. *)
let reassemble_cell ~workload ~model ~trials tool category batches =
  match
    List.sort
      (fun (a : Wire.batch) b -> compare a.b_first b.b_first)
      batches
  with
  | [] -> Error "cell received no verdict batches"
  | first_b :: _ as sorted ->
    let rec tile at acc = function
      | [] ->
        let expected = max trials 0 in
        if at = expected then Ok acc
        else
          Error
            (Printf.sprintf "batches cover %d of %d trials" at expected)
      | (b : Wire.batch) :: rest ->
        if b.b_first <> at then
          Error
            (Printf.sprintf "batch gap or overlap at trial %d (got %d)" at
               b.b_first)
        else if b.b_population <> first_b.b_population then
          Error "batches disagree on population"
        else if not (Core.Fault_model.equal b.b_model model) then
          Error "batch fault model differs from the submitted job's"
        else
          tile (at + b.b_count)
            (Core.Verdict.merge acc b.b_tally)
            rest
    in
    let zero = Core.Verdict.fresh_tally () in
    (match tile 0 zero sorted with
    | Error _ as e -> e
    | Ok tally ->
      Ok
        {
          Core.Campaign.c_workload = workload;
          c_tool = tool;
          c_category = category;
          c_model = model;
          c_population = first_b.b_population;
          c_tally = tally;
        })

let verify_stream (job : Wire.job) batches ~csv ~digest =
  let grid = Plan.cells job in
  let rec cells acc = function
    | [] -> Ok (List.rev acc)
    | (tool, category) :: rest -> (
      let mine =
        List.filter
          (fun (b : Wire.batch) -> b.b_tool = tool && b.b_category = category)
          batches
      in
      match
        reassemble_cell ~workload:job.Wire.j_workload ~model:job.Wire.j_model
          ~trials:job.Wire.j_trials tool category mine
      with
      | Error e ->
        Error
          (Printf.sprintf "cell %s/%s: %s"
             (Core.Campaign.tool_name tool)
             (Core.Category.name category)
             e)
      | Ok cell -> cells (cell :: acc) rest)
  in
  match cells [] grid with
  | Error e -> Error ("verdict stream does not reassemble: " ^ e)
  | Ok cs ->
    let rebuilt = Core.Campaign.to_csv cs in
    if not (String.equal rebuilt csv) then
      Error "verdict stream does not reassemble to the reported CSV"
    else if not (String.equal (Digest.to_hex (Digest.string csv)) digest) then
      Error "result digest mismatch"
    else Ok ()

let submit t ?(on_batch = fun _ -> ()) (job : Wire.job) =
  send t (Wire.Submit job);
  let id = ref None in
  let batches = ref [] in
  let rec await () =
    match recv t with
    | Wire.Ack { job } ->
      id := Some job;
      await ()
    | Wire.Batch b when Some b.Wire.b_job = !id ->
      batches := b :: !batches;
      on_batch b;
      await ()
    | Wire.Batch _ -> await ()
    | Wire.Job_done { job = j; csv; digest } when Some j = !id -> (
      match verify_stream job (List.rev !batches) ~csv ~digest with
      | Ok () ->
        Ok
          {
            r_job = j;
            r_csv = csv;
            r_digest = digest;
            r_batches = List.length !batches;
          }
      | Error _ as e -> e)
    | Wire.Job_done _ -> await ()
    | Wire.Error { message; _ } -> Error message
    | Wire.Bye -> Error "server shut down before the job finished"
    | Wire.Welcome _ | Wire.Pong -> await ()
  in
  try await () with Failure m -> Error m

let shutdown t ~drain =
  send t (Wire.Shutdown { drain });
  let rec await () =
    match recv t with Wire.Bye -> () | _ -> await ()
  in
  (* The server may close the connection right after (or instead of)
     flushing Bye; either way it is gone. *)
  try await () with Failure _ -> ()

(* --- load generation --- *)

type load_stats = {
  l_jobs : int;
  l_ok : int;
  l_failed : int;
  l_wall : float;
  l_jobs_per_s : float;
  l_mean_ms : float;
  l_p50_ms : float;
  l_p99_ms : float;
}

type gconn = {
  g_fd : Unix.file_descr;
  mutable g_rbuf : string;
  mutable g_wbuf : string;
  mutable g_t0 : float;  (* submission time of the outstanding job *)
  mutable g_busy : bool;
  mutable g_dead : bool;
}

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else
    let k = int_of_float (ceil (p *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) k))

let loadgen addr ~jobs ~concurrency ~job_of =
  if jobs <= 0 then
    {
      l_jobs = 0;
      l_ok = 0;
      l_failed = 0;
      l_wall = 0.;
      l_jobs_per_s = 0.;
      l_mean_ms = 0.;
      l_p50_ms = 0.;
      l_p99_ms = 0.;
    }
  else begin
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    let nconn = max 1 (min concurrency jobs) in
    let domain, sa = sockaddr addr in
    let conns =
      Array.init nconn (fun _ ->
          let fd = Unix.socket domain SOCK_STREAM 0 in
          Unix.connect fd sa;
          Unix.set_nonblock fd;
          {
            g_fd = fd;
            g_rbuf = "";
            g_wbuf = "";
            g_t0 = 0.;
            g_busy = false;
            g_dead = false;
          })
    in
    let next = ref 0 in
    let ok = ref 0 in
    let failed = ref 0 in
    let latencies = ref [] in
    let completed () = !ok + !failed in
    let start g =
      if !next < jobs then begin
        let job = job_of !next in
        incr next;
        g.g_wbuf <- g.g_wbuf ^ Wire.encode_client (Wire.Submit job);
        g.g_t0 <- Unix.gettimeofday ();
        g.g_busy <- true
      end
    in
    let finish g ~success =
      if success then begin
        incr ok;
        latencies := ((Unix.gettimeofday () -. g.g_t0) *. 1000.) :: !latencies
      end
      else incr failed;
      g.g_busy <- false;
      start g
    in
    let kill g =
      if not g.g_dead then begin
        g.g_dead <- true;
        (try Unix.close g.g_fd with Unix.Unix_error _ -> ());
        if g.g_busy then begin
          g.g_busy <- false;
          incr failed
        end
      end
    in
    let pump_out g =
      try
        let n = Unix.write_substring g.g_fd g.g_wbuf 0 (String.length g.g_wbuf) in
        g.g_wbuf <- String.sub g.g_wbuf n (String.length g.g_wbuf - n)
      with
      | Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> ()
      | Unix.Unix_error _ -> kill g
    in
    let rec pump_msgs g =
      if not g.g_dead then
        match Wire.decode_server g.g_rbuf with
        | Wire.Need_more -> ()
        | Wire.Bad _ -> kill g
        | Wire.Got (msg, n) ->
          g.g_rbuf <- String.sub g.g_rbuf n (String.length g.g_rbuf - n);
          (match msg with
          | Wire.Job_done _ -> finish g ~success:true
          | Wire.Error _ -> finish g ~success:false
          | Wire.Bye -> kill g
          | Wire.Ack _ | Wire.Batch _ | Wire.Welcome _ | Wire.Pong -> ());
          pump_msgs g
    in
    let pump_in g =
      let buf = Bytes.create 65536 in
      match Unix.read g.g_fd buf 0 (Bytes.length buf) with
      | 0 -> kill g
      | n ->
        g.g_rbuf <- g.g_rbuf ^ Bytes.sub_string buf 0 n;
        pump_msgs g
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> ()
      | exception Unix.Unix_error _ -> kill g
    in
    let t_start = Unix.gettimeofday () in
    Array.iter start conns;
    let alive () = Array.exists (fun g -> not g.g_dead) conns in
    while completed () < jobs && alive () do
      let rfds =
        Array.to_list conns
        |> List.filter_map (fun g ->
               if g.g_dead || not g.g_busy then None else Some g.g_fd)
      in
      let wfds =
        Array.to_list conns
        |> List.filter_map (fun g ->
               if g.g_dead || String.length g.g_wbuf = 0 then None
               else Some g.g_fd)
      in
      match Unix.select rfds wfds [] 1.0 with
      | readable, writable, _ ->
        Array.iter
          (fun g ->
            if (not g.g_dead) && List.mem g.g_fd writable then pump_out g)
          conns;
        Array.iter
          (fun g ->
            if (not g.g_dead) && List.mem g.g_fd readable then pump_in g)
          conns
      | exception Unix.Unix_error (EINTR, _, _) -> ()
    done;
    (* connections died with jobs unassigned: the remainder never ran *)
    if completed () < jobs then failed := !failed + (jobs - completed ());
    let wall = Unix.gettimeofday () -. t_start in
    Array.iter kill conns;
    let lat = Array.of_list !latencies in
    Array.sort compare lat;
    let mean =
      if Array.length lat = 0 then 0.
      else Array.fold_left ( +. ) 0. lat /. float_of_int (Array.length lat)
    in
    {
      l_jobs = jobs;
      l_ok = !ok;
      l_failed = !failed;
      l_wall = wall;
      l_jobs_per_s = (if wall > 0. then float_of_int !ok /. wall else 0.);
      l_mean_ms = mean;
      l_p50_ms = percentile lat 0.50;
      l_p99_ms = percentile lat 0.99;
    }
  end
