(** Wire protocol of the campaign service: a length-prefixed, versioned
    binary framing with a pure codec — no I/O anywhere in this module,
    so every property (round-trip identity, malformed-input safety,
    version rejection) is QCheck-testable on plain strings.

    Frame layout: one magic byte, one protocol-version byte, a 32-bit
    big-endian payload length, then the payload (tag byte + fields).
    The decoder consumes exactly one frame from the front of a buffer
    and {e never raises}: incomplete input reports {!Need_more},
    anything else that cannot be a well-formed frame of this protocol
    version reports {!Bad} (the connection should then be dropped —
    there is no resynchronization).

    A job names a {e registered} workload; resolution (and every other
    validation that needs the environment) happens at admission in
    {!Serve}, not here. *)

val version : int
(** Protocol version carried in every frame header (currently 2; v2
    added the fault-model field to Submit jobs and Batch frames).  A
    frame with any other version is rejected by the decoder as {!Bad} —
    old clients fail fast instead of misparsing. *)

val max_payload : int
(** Upper bound on a frame's payload size; larger length prefixes are
    rejected as {!Bad} so a garbage header cannot make a reader wait
    for gigabytes. *)

(** One campaign job: workload x tools x categories x trials x seed.
    The cell grid is [tools x categories] in the given order — the same
    canonical order the offline scheduler uses, so the job's CSV is
    byte-identical to an offline [fi campaign]/[fi diagnose] run of the
    same spec. *)
type job = {
  j_workload : string;  (** registered benchmark name *)
  j_tools : Core.Campaign.tool list;
  j_categories : Core.Category.t list;
  j_model : Core.Fault_model.t;
      (** the fault model every cell of the job runs under; travels by
          name, so an unknown model is a decode error, not a silent
          default *)
  j_trials : int;
  j_seed : int;
  j_out : string option;
      (** server-side CSV path: written by the server on completion,
          which is what lets a journal-resumed job finish after the
          submitting client is gone *)
}

type client_msg =
  | Hello of { client : string }
  | Submit of job
  | Shutdown of { drain : bool }
      (** [drain=true]: finish every in-flight job, then exit.
          [drain=false]: exit now; unfinished jobs stay in the journal
          and resume on the next start. *)
  | Ping

(** One streamed verdict batch: the tally of trials
    [first .. first+count-1] of one cell of one job.  Batches of a cell
    partition its trial range; merging them with {!Core.Verdict.merge}
    reproduces the cell's full tally exactly. *)
type batch = {
  b_job : int;
  b_tool : Core.Campaign.tool;
  b_category : Core.Category.t;
  b_model : Core.Fault_model.t;
  b_first : int;
  b_count : int;
  b_population : int;
  b_tally : Core.Verdict.tally;
}

type server_msg =
  | Welcome of { server : string; pool : int }
  | Ack of { job : int }  (** job admitted, with its server-side id *)
  | Batch of batch
  | Job_done of { job : int; csv : string; digest : string }
      (** [csv] is the job's full result in canonical cell order;
          [digest] its MD5 hex — equal to the manifest digest an
          offline run of the same spec records *)
  | Error of { job : int option; message : string }
  | Pong
  | Bye  (** last frame before the server closes the connection *)

val encode_client : client_msg -> string
(** A complete frame, ready to write. *)

val encode_server : server_msg -> string

type 'a decoded =
  | Need_more  (** buffer holds a frame prefix; read more bytes *)
  | Got of 'a * int  (** decoded message and the frame's total size *)
  | Bad of string  (** not a frame of this protocol; drop the peer *)

val decode_client : string -> client_msg decoded
(** Decode one frame from the front of the buffer.  Total: never
    raises, whatever the input bytes. *)

val decode_server : string -> server_msg decoded
