(** Admission planning: pure arithmetic between a submitted job and the
    shard tasks the pool executes.  No I/O, no state — everything here
    is property-testable, and everything the server journals about a
    job's plan (its shard size) is enough to rebuild the identical plan
    on restart.

    Determinism contract: a job's cells are its [tools x categories]
    grid in the given order (the scheduler's canonical order for one
    workload), each cell's trial range is partitioned into contiguous
    shards by {!shards}, and every shard runs through
    {!Core.Campaign.run_cell_range} — whose per-trial RNG streams make
    the merged tally byte-identical to a sequential offline run for
    {e any} shard size. *)

(** Identity of one cell computation.  Two jobs whose specs agree on a
    key compute that cell {e once}: the admission layer merges
    overlapping requests onto the same in-flight computation.  The
    shard size is part of the key so shared streaming batches always
    line up with each waiter's journaled plan. *)
type cell_id = {
  p_workload : string;
  p_tool : Core.Campaign.tool;
  p_category : Core.Category.t;
  p_model : Core.Fault_model.t;
  p_trials : int;
  p_seed : int;
  p_chunk : int;
}

val cells : Wire.job -> (Core.Campaign.tool * Core.Category.t) list
(** The job's cell grid, tool-major — the exact order of the offline
    scheduler's canonical cell list for one workload, and hence of the
    job's result CSV. *)

val default_chunk : pool:int -> trials:int -> int
(** Shard size when the submitter leaves it to the server: small enough
    that a single-cell job still feeds every domain (and streams
    incremental batches), floored at 1 and capped so tiny jobs are not
    shredded into per-trial tasks. *)

val shards : chunk:int -> trials:int -> (int * int) list
(** [(first, count)] shards partitioning [0 .. trials-1] in order.
    [trials <= 0] yields the single empty shard [(0, 0)] so an empty
    cell still produces a result (and a population).
    @raise Invalid_argument if [chunk <= 0]. *)

val cell_id :
  workload:string ->
  tool:Core.Campaign.tool ->
  category:Core.Category.t ->
  model:Core.Fault_model.t ->
  trials:int -> seed:int -> chunk:int -> cell_id

val config_for :
  base:Core.Campaign.config ->
  model:Core.Fault_model.t ->
  trials:int -> seed:int -> Core.Campaign.config
(** The campaign config a job's cells run under: the server's base
    config (snapshot mode, tool policies) with the job's fault model,
    trials and seed — the same override an offline
    [fi campaign -n T --seed S --model M] applies. *)

val validate : Wire.job -> (Core.Workload.t, string) result
(** Admission check: the workload must be registered, the grid
    non-empty, the trial count sane.  Returns the resolved workload. *)
