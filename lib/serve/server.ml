(* The campaign service event loop; see the .mli.

   Threading model: one select(2) loop on the calling domain owns every
   connection, the job table and the cell cache; pool workers only read
   the immutable shard spec, run the trials, and push the finished cell
   onto a mutex-protected completion queue (waking the loop through a
   self-pipe).  Nothing else crosses domains, so the loop needs no
   locking of its own state. *)

type config = {
  socket : string;
  tcp : (string * int) option;
  pool_size : int;
  chunk : int option;
  journal : string option;
  base : Core.Campaign.config;
  idle_timeout : float;
  max_buffered : int;
  handle_signals : bool;
  name : string;
}

let default ~socket =
  {
    socket;
    tcp = None;
    pool_size = Engine.Pool.default_size ();
    chunk = None;
    journal = None;
    base = Core.Campaign.default_config;
    idle_timeout = 0.;
    max_buffered = 8 * 1024 * 1024;
    handle_signals = false;
    name = "fi-serve";
  }

type stats = {
  connections : int;
  admitted : int;
  completed : int;
  failed : int;
  resumed : int;
}

let m_conns = Obs.Metrics.counter "serve.connections"
let m_admitted = Obs.Metrics.counter "serve.jobs.admitted"
let m_completed = Obs.Metrics.counter "serve.jobs.completed"
let m_failed = Obs.Metrics.counter "serve.jobs.failed"
let m_rejected = Obs.Metrics.counter "serve.jobs.rejected"
let m_resumed = Obs.Metrics.counter "serve.jobs.resumed"
let m_shards = Obs.Metrics.counter "serve.shards.executed"
let m_shards_restored = Obs.Metrics.counter "serve.shards.restored"
let m_shards_dup = Obs.Metrics.counter "serve.shards.duplicate"
let m_batches = Obs.Metrics.counter "serve.batches.streamed"
let m_cells_shared = Obs.Metrics.counter "serve.cells.shared"
let m_prep_hits = Obs.Metrics.counter "serve.prepared_cache.hits"
let m_prep_misses = Obs.Metrics.counter "serve.prepared_cache.misses"
let m_prep_evicted = Obs.Metrics.counter "serve.prepared_cache.evictions"
let m_runner_hits = Obs.Metrics.counter "serve.runner_cache.hits"
let m_runner_misses = Obs.Metrics.counter "serve.runner_cache.misses"
let h_job_ms = Obs.Metrics.histogram "serve.job.latency_ms"
let h_shard_ms = Obs.Metrics.histogram "serve.shard.latency_ms"

type conn = {
  c_fd : Unix.file_descr;
  mutable c_in : string;
  c_out : string Queue.t;
  mutable c_out_off : int;  (* bytes of the queue head already written *)
  mutable c_out_bytes : int;
  mutable c_last : float;
  mutable c_jobs : int;  (* in-flight jobs submitted on this connection *)
  mutable c_closed : bool;
}

type cell_state = {
  cs_key : Plan.cell_id;
  cs_shards : (int * int) array;
  cs_parts : Core.Campaign.cell option array;
  mutable cs_left : int;
  mutable cs_merged : Core.Campaign.cell option;
  mutable cs_failed : string option;
  mutable cs_waiters : waiter list;
}

and waiter = {
  w_job : job_state;
  mutable w_left : int;
  w_delivered : bool array;  (* per shard of the cell *)
}

and job_state = {
  js_id : int;
  js_job : Wire.job;
  mutable js_conn : conn option;  (* None: headless (resumed / orphaned) *)
  mutable js_cells : cell_state array;
  mutable js_remaining : int;  (* cells not yet fully delivered *)
  mutable js_failed : bool;
  mutable js_finished : bool;
  js_start : float;
}

type completion =
  | Shard_done of cell_state * int * Core.Campaign.cell
  | Shard_failed of cell_state * string

(* A workload stays prepared for as long as its program is unchanged;
   sound because Campaign.prepare depends only on the base config's tool
   policies and backend, never on a job's trials or seed.  Entries are
   validated by [Workload.digest] — a name alone is not a sound cache
   key, since a long-running server can outlive an edit to the workload
   it serves — and a digest mismatch evicts and rebuilds.  Rejoin
   journals are recorded alongside — a one-time golden-run cost that
   every later shard of every job repays with early trial exits.  The
   per-entry mutex deliberately serializes concurrent first-builders of
   the same workload — better one build than pool_size redundant
   ones. *)
type prep_entry = {
  pm : Mutex.t;
  p_digest : string;  (* Workload.digest at entry creation *)
  mutable pv :
    (Core.Campaign.prepared * Core.Campaign.rejoin, string) result option;
}

(* One runner per (workload, tool, category) per domain, exactly the
   scheduler's trick: validated by physical equality on the prepared
   value, so entries from an older server in the same process simply
   miss and are replaced. *)
let runner_cache :
    (string * Core.Campaign.tool * Core.Category.t, Core.Campaign.runner)
    Hashtbl.t
    Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 8)

let cached_runner (jcfg : Core.Campaign.config) p rejoin name tool category =
  if not jcfg.Core.Campaign.snapshot then None
  else begin
    let cache = Domain.DLS.get runner_cache in
    let key = (name, tool, category) in
    match Hashtbl.find_opt cache key with
    | Some r when Core.Campaign.runner_matches r p tool category ->
      Obs.Metrics.incr m_runner_hits;
      Some r
    | _ ->
      Obs.Metrics.incr m_runner_misses;
      let r = Core.Campaign.runner ~rejoin p tool category in
      Hashtbl.replace cache key r;
      Some r
  end

let write_file path content =
  let oc = open_out path in
  output_string oc content;
  close_out oc

let now () = Unix.gettimeofday ()
let ms_since t0 = int_of_float ((now () -. t0) *. 1000.)

let run ?(on_ready = fun () -> ()) (cfg : config) =
  (* A peer that vanishes mid-write must surface as EPIPE, not kill the
     process. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let draining = ref false in
  let stop_now = ref false in
  if cfg.handle_signals then begin
    Sys.set_signal Sys.sigterm (Sys.Signal_handle (fun _ -> draining := true));
    Sys.set_signal Sys.sigint (Sys.Signal_handle (fun _ -> draining := true))
  end;
  let journal, journaled =
    match cfg.journal with
    | None -> (None, [])
    | Some path ->
      let j, entries =
        Joblog.start ~path ~snapshot:cfg.base.Core.Campaign.snapshot
      in
      (Some j, entries)
  in
  let pool = Engine.Pool.create ~size:(max 1 cfg.pool_size) () in
  let cancelled = Atomic.make false in
  let cq : completion Queue.t = Queue.create () in
  let cq_mutex = Mutex.create () in
  let wake_r, wake_w = Unix.pipe () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  let push_completion c =
    Mutex.lock cq_mutex;
    Queue.push c cq;
    Mutex.unlock cq_mutex;
    try ignore (Unix.write wake_w (Bytes.make 1 '!') 0 1)
    with Unix.Unix_error _ -> ()
    (* a full pipe already guarantees a wakeup *)
  in
  (try if Sys.file_exists cfg.socket then Sys.remove cfg.socket
   with Sys_error _ -> ());
  let unix_l = Unix.socket PF_UNIX SOCK_STREAM 0 in
  Unix.bind unix_l (ADDR_UNIX cfg.socket);
  Unix.listen unix_l 64;
  Unix.set_nonblock unix_l;
  let tcp_l =
    match cfg.tcp with
    | None -> None
    | Some (host, port) ->
      let addr =
        try Unix.inet_addr_of_string host
        with Failure _ -> (Unix.gethostbyname host).h_addr_list.(0)
      in
      let fd = Unix.socket PF_INET SOCK_STREAM 0 in
      Unix.setsockopt fd SO_REUSEADDR true;
      Unix.bind fd (ADDR_INET (addr, port));
      Unix.listen fd 64;
      Unix.set_nonblock fd;
      Some fd
  in
  let conns : (Unix.file_descr, conn) Hashtbl.t = Hashtbl.create 16 in
  let jobs : (int, job_state) Hashtbl.t = Hashtbl.create 16 in
  let cell_cache : (Plan.cell_id, cell_state) Hashtbl.t = Hashtbl.create 64 in
  let prep_cache : (string, prep_entry) Hashtbl.t = Hashtbl.create 8 in
  let prep_mutex = Mutex.create () in
  let next_id = ref 1 in
  let active_jobs = ref 0 in
  let n_conns = ref 0 in
  let n_admitted = ref 0 in
  let n_completed = ref 0 in
  let n_failed = ref 0 in
  let n_resumed = ref 0 in
  let get_prepared name =
    match Workloads.find name with
    | None -> Error (Printf.sprintf "unknown workload %S" name)
    | Some w ->
      let digest = Core.Workload.digest w in
      Mutex.lock prep_mutex;
      let entry =
        match Hashtbl.find_opt prep_cache name with
        | Some pe when String.equal pe.p_digest digest ->
          Obs.Metrics.incr m_prep_hits;
          pe
        | stale ->
          (match stale with
          | Some _ ->
            (* same name, different program: the old preparation (and,
               via runner_matches, every runner built on it) is dead *)
            Obs.Metrics.incr m_prep_evicted
          | None -> ());
          Obs.Metrics.incr m_prep_misses;
          let pe = { pm = Mutex.create (); p_digest = digest; pv = None } in
          Hashtbl.replace prep_cache name pe;
          pe
      in
      Mutex.unlock prep_mutex;
      Mutex.lock entry.pm;
      let r =
        match entry.pv with
        | Some r -> r
        | None ->
          let r =
            try
              let p = Core.Campaign.prepare cfg.base w in
              Ok (p, Core.Campaign.record_rejoin p)
            with exn -> Error (Printexc.to_string exn)
          in
          entry.pv <- Some r;
          r
      in
      Mutex.unlock entry.pm;
      r
  in
  (* --- connection output --- *)
  let close_conn c =
    if not c.c_closed then begin
      c.c_closed <- true;
      Hashtbl.remove conns c.c_fd;
      (try Unix.close c.c_fd with Unix.Unix_error _ -> ());
      (* its in-flight jobs finish headless: journal + output file *)
      Hashtbl.iter
        (fun _ js ->
          match js.js_conn with
          | Some c' when c' == c -> js.js_conn <- None
          | _ -> ())
        jobs
    end
  in
  let enqueue_out c s =
    if not c.c_closed then begin
      Queue.push s c.c_out;
      c.c_out_bytes <- c.c_out_bytes + String.length s
    end
  in
  let send c msg = enqueue_out c (Wire.encode_server msg) in
  let flush_conn c =
    if not c.c_closed then
      try
        let blocked = ref false in
        while (not !blocked) && not (Queue.is_empty c.c_out) do
          let s = Queue.peek c.c_out in
          let len = String.length s - c.c_out_off in
          let n = Unix.write_substring c.c_fd s c.c_out_off len in
          c.c_out_bytes <- c.c_out_bytes - n;
          if n = len then begin
            ignore (Queue.pop c.c_out);
            c.c_out_off <- 0
          end
          else begin
            c.c_out_off <- c.c_out_off + n;
            blocked := true
          end
        done;
        c.c_last <- now ()
      with
      | Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> ()
      | Unix.Unix_error _ -> close_conn c
  in
  (* --- job lifecycle (select-loop domain only) --- *)
  let merge_cell cs =
    match Array.to_list cs.cs_parts with
    | Some (first : Core.Campaign.cell) :: rest ->
      let tally =
        List.fold_left
          (fun acc part ->
            match part with
            | Some (c : Core.Campaign.cell) -> Core.Verdict.merge acc c.c_tally
            | None -> assert false)
          first.c_tally rest
      in
      { first with c_tally = tally }
    | _ -> assert false
  in
  let finish_job js =
    js.js_finished <- true;
    decr active_jobs;
    let cells =
      Array.to_list
        (Array.map (fun cs -> Option.get cs.cs_merged) js.js_cells)
    in
    let csv = Core.Campaign.to_csv cells in
    let digest = Digest.to_hex (Digest.string csv) in
    (match journal with
    | Some j -> Joblog.record_done j ~id:js.js_id ~digest
    | None -> ());
    (match js.js_job.Wire.j_out with
    | Some path -> ( try write_file path csv with Sys_error _ -> ())
    | None -> ());
    (match js.js_conn with
    | Some c ->
      c.c_jobs <- c.c_jobs - 1;
      send c (Wire.Job_done { job = js.js_id; csv; digest })
    | None -> ());
    Obs.Metrics.incr m_completed;
    Obs.Metrics.observe h_job_ms (ms_since js.js_start);
    incr n_completed
  in
  let fail_job js msg =
    if not (js.js_failed || js.js_finished) then begin
      js.js_failed <- true;
      decr active_jobs;
      (match journal with
      | Some j -> Joblog.record_fail j ~id:js.js_id
      | None -> ());
      (match js.js_conn with
      | Some c ->
        c.c_jobs <- c.c_jobs - 1;
        send c (Wire.Error { job = Some js.js_id; message = msg })
      | None -> ());
      Obs.Metrics.incr m_failed;
      incr n_failed
    end
  in
  let deliver w cs k (cell : Core.Campaign.cell) =
    if
      (not w.w_delivered.(k))
      && not (w.w_job.js_failed || w.w_job.js_finished)
    then begin
      w.w_delivered.(k) <- true;
      w.w_left <- w.w_left - 1;
      let first, count = cs.cs_shards.(k) in
      (match journal with
      | Some j ->
        Joblog.record_shard j ~id:w.w_job.js_id
          {
            Joblog.s_tool = cell.c_tool;
            s_category = cell.c_category;
            s_first = first;
            s_count = count;
            s_population = cell.c_population;
            s_tally = cell.c_tally;
          }
      | None -> ());
      (match w.w_job.js_conn with
      | Some c ->
        Obs.Metrics.incr m_batches;
        send c
          (Wire.Batch
             {
               b_job = w.w_job.js_id;
               b_tool = cell.c_tool;
               b_category = cell.c_category;
               b_model = cell.c_model;
               b_first = first;
               b_count = count;
               b_population = cell.c_population;
               b_tally = cell.c_tally;
             })
      | None -> ());
      if w.w_left = 0 then begin
        w.w_job.js_remaining <- w.w_job.js_remaining - 1;
        if w.w_job.js_remaining = 0 then finish_job w.w_job
      end
    end
  in
  (* Record shard [k]'s result on the cell and fan it out.  The merged
     cell is computed before delivery so the final delivery of a job's
     final cell can assemble the CSV; parts are retained afterwards so
     later jobs joining this (cached) cell stream identical batches. *)
  let fill_part cs k cell =
    cs.cs_parts.(k) <- Some cell;
    cs.cs_left <- cs.cs_left - 1;
    if cs.cs_left = 0 then cs.cs_merged <- Some (merge_cell cs);
    List.iter (fun w -> deliver w cs k cell) cs.cs_waiters
  in
  let on_completion = function
    | Shard_done (cs, k, cell) ->
      if cs.cs_parts.(k) <> None then Obs.Metrics.incr m_shards_dup
      else fill_part cs k cell
    | Shard_failed (cs, msg) ->
      if cs.cs_failed = None then begin
        cs.cs_failed <- Some msg;
        List.iter (fun w -> fail_job w.w_job msg) cs.cs_waiters
      end
  in
  (* --- shard execution (pool domains) --- *)
  let run_shard cs k =
    if not (Atomic.get cancelled) then begin
      let key = cs.cs_key in
      let first, count = cs.cs_shards.(k) in
      let work () =
        match get_prepared key.Plan.p_workload with
        | Error msg -> push_completion (Shard_failed (cs, msg))
        | Ok (p, rejoin) ->
          let jcfg =
            Plan.config_for ~base:cfg.base ~model:key.Plan.p_model
              ~trials:key.Plan.p_trials ~seed:key.Plan.p_seed
          in
          let runner =
            cached_runner jcfg p rejoin key.Plan.p_workload key.Plan.p_tool
              key.Plan.p_category
          in
          let t0 = now () in
          let cell =
            Core.Campaign.run_cell_range ?runner jcfg p key.Plan.p_tool
              key.Plan.p_category ~first ~count
          in
          Obs.Metrics.incr m_shards;
          Obs.Metrics.observe h_shard_ms (ms_since t0);
          push_completion (Shard_done (cs, k, cell))
      in
      let spanned () =
        if Obs.Trace.on () then
          Obs.Trace.span "serve-shard"
            ~args:
              [
                ("workload", key.Plan.p_workload);
                ("tool", Core.Campaign.tool_name key.Plan.p_tool);
                ("category", Core.Category.name key.Plan.p_category);
                ("model", Core.Fault_model.name key.Plan.p_model);
                ("trials", string_of_int key.Plan.p_trials);
                ("seed", string_of_int key.Plan.p_seed);
                ("first", string_of_int first);
                ("count", string_of_int count);
              ]
            work
        else work ()
      in
      (* Pool tasks must not raise. *)
      try spanned ()
      with exn -> push_completion (Shard_failed (cs, Printexc.to_string exn))
    end
  in
  (* --- admission --- *)
  let admit ?(resumed_shards = []) ~conn ~id ~chunk (job : Wire.job) =
    let grid = Plan.cells job in
    let js =
      {
        js_id = id;
        js_job = job;
        js_conn = conn;
        js_cells = [||];
        js_remaining = List.length grid;
        js_failed = false;
        js_finished = false;
        js_start = now ();
      }
    in
    Hashtbl.replace jobs id js;
    incr active_jobs;
    (match conn with Some c -> c.c_jobs <- c.c_jobs + 1 | None -> ());
    let states =
      List.map
        (fun (tool, category) ->
          let key =
            Plan.cell_id ~workload:job.Wire.j_workload ~tool ~category
              ~model:job.Wire.j_model ~trials:job.Wire.j_trials
              ~seed:job.Wire.j_seed ~chunk
          in
          match Hashtbl.find_opt cell_cache key with
          | Some cs ->
            Obs.Metrics.incr m_cells_shared;
            (cs, false)
          | None ->
            let shards = Array.of_list (Plan.shards ~chunk ~trials:job.Wire.j_trials) in
            let cs =
              {
                cs_key = key;
                cs_shards = shards;
                cs_parts = Array.make (Array.length shards) None;
                cs_left = Array.length shards;
                cs_merged = None;
                cs_failed = None;
                cs_waiters = [];
              }
            in
            Hashtbl.replace cell_cache key cs;
            (cs, true))
        grid
    in
    js.js_cells <- Array.of_list (List.map fst states);
    List.iter
      (fun (cs, fresh) ->
        let journaled_shard k =
          let first, count = cs.cs_shards.(k) in
          List.find_opt
            (fun (s : Joblog.shard) ->
              s.s_tool = cs.cs_key.Plan.p_tool
              && s.s_category = cs.cs_key.Plan.p_category
              && s.s_first = first && s.s_count = count)
            resumed_shards
        in
        (* Journaled tallies pre-fill the cell (delivering to any
           existing waiters — the shard is deterministic, so a tally
           journaled under one job is every job's tally). *)
        Array.iteri
          (fun k _ ->
            if cs.cs_parts.(k) = None then
              match journaled_shard k with
              | Some s ->
                Obs.Metrics.incr m_shards_restored;
                fill_part cs k
                  {
                    Core.Campaign.c_workload = job.Wire.j_workload;
                    c_tool = s.Joblog.s_tool;
                    c_category = s.Joblog.s_category;
                    c_model = job.Wire.j_model;
                    c_population = s.Joblog.s_population;
                    c_tally = s.Joblog.s_tally;
                  }
              | None -> ())
          cs.cs_shards;
        (* A fresh cell must get its tasks even if this job already
           failed on an earlier cell: it is in the cache now, and a
           later job joining it would otherwise wait forever. *)
        if fresh then
          Array.iteri
            (fun k part ->
              if part = None then
                Engine.Pool.submit pool (fun () -> run_shard cs k))
            cs.cs_parts;
        match cs.cs_failed with
        | Some msg -> fail_job js msg
        | None ->
          if not (js.js_failed || js.js_finished) then begin
            let n = Array.length cs.cs_shards in
            let w = { w_job = js; w_left = n; w_delivered = Array.make n false } in
            (* This job's own journaled shards are already on disk under
               its id: mark them delivered without re-journaling. *)
            Array.iteri
              (fun k _ ->
                if journaled_shard k <> None && cs.cs_parts.(k) <> None then begin
                  w.w_delivered.(k) <- true;
                  w.w_left <- w.w_left - 1
                end)
              cs.cs_shards;
            if w.w_left = 0 then begin
              js.js_remaining <- js.js_remaining - 1;
              if js.js_remaining = 0 then finish_job js
            end;
            cs.cs_waiters <- w :: cs.cs_waiters;
            (* Stream parts that were already computed (cache hit on a
               running or finished cell). *)
            Array.iteri
              (fun k part ->
                match part with
                | Some cell -> deliver w cs k cell
                | None -> ())
              cs.cs_parts
          end)
      states
  in
  (* --- protocol --- *)
  let handle_msg c = function
    | Wire.Hello _ ->
      send c (Wire.Welcome { server = cfg.name; pool = Engine.Pool.size pool })
    | Wire.Ping -> send c Wire.Pong
    | Wire.Shutdown { drain } ->
      draining := true;
      if not drain then stop_now := true
    | Wire.Submit job -> (
      if !draining then begin
        Obs.Metrics.incr m_rejected;
        send c (Wire.Error { job = None; message = "server is draining" })
      end
      else
        match Plan.validate job with
        | Error msg ->
          Obs.Metrics.incr m_rejected;
          send c (Wire.Error { job = None; message = msg })
        | Ok _ ->
          let id = !next_id in
          incr next_id;
          let chunk =
            match cfg.chunk with
            | Some n -> n
            | None ->
              Plan.default_chunk ~pool:(Engine.Pool.size pool)
                ~trials:job.Wire.j_trials
          in
          (match journal with
          | Some j -> Joblog.record_job j ~id ~chunk job
          | None -> ());
          send c (Wire.Ack { job = id });
          Obs.Metrics.incr m_admitted;
          incr n_admitted;
          admit ~conn:(Some c) ~id ~chunk job)
  in
  let rec parse_frames c =
    if not c.c_closed then
      match Wire.decode_client c.c_in with
      | Wire.Need_more -> ()
      | Wire.Bad msg ->
        send c (Wire.Error { job = None; message = "protocol error: " ^ msg });
        send c Wire.Bye;
        c.c_in <- "";
        flush_conn c;
        close_conn c
      | Wire.Got (msg, n) ->
        c.c_in <- String.sub c.c_in n (String.length c.c_in - n);
        handle_msg c msg;
        parse_frames c
  in
  let accept_on lfd =
    try
      while true do
        let fd, _ = Unix.accept lfd in
        Unix.set_nonblock fd;
        let c =
          {
            c_fd = fd;
            c_in = "";
            c_out = Queue.create ();
            c_out_off = 0;
            c_out_bytes = 0;
            c_last = now ();
            c_jobs = 0;
            c_closed = false;
          }
        in
        Hashtbl.replace conns fd c;
        Obs.Metrics.incr m_conns;
        incr n_conns
      done
    with
    | Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> ()
    | Unix.Unix_error _ -> ()
  in
  let flush_all_deadline seconds =
    let deadline = now () +. seconds in
    let pending () =
      Hashtbl.fold (fun _ c acc -> acc || not (Queue.is_empty c.c_out)) conns false
    in
    while pending () && now () < deadline do
      let wfds =
        Hashtbl.fold
          (fun fd c acc -> if Queue.is_empty c.c_out then acc else fd :: acc)
          conns []
      in
      match Unix.select [] wfds [] 0.2 with
      | _, writable, _ ->
        List.iter
          (fun fd ->
            match Hashtbl.find_opt conns fd with
            | Some c -> flush_conn c
            | None -> ())
          writable
      | exception Unix.Unix_error (EINTR, _, _) -> ()
    done
  in
  (* --- startup: journal recovery, then announce readiness --- *)
  List.iter
    (fun (e : Joblog.entry) ->
      next_id := max !next_id (e.e_id + 1);
      if not (e.e_done || e.e_failed) then
        match Plan.validate e.e_job with
        | Error _ -> (
          match journal with
          | Some j -> Joblog.record_fail j ~id:e.e_id
          | None -> ())
        | Ok _ ->
          Obs.Metrics.incr m_resumed;
          incr n_resumed;
          admit ~resumed_shards:e.e_shards ~conn:None ~id:e.e_id
            ~chunk:(max 1 e.e_chunk) e.e_job)
    journaled;
  on_ready ();
  (* --- the loop --- *)
  Fun.protect
    ~finally:(fun () ->
      Atomic.set cancelled true;
      Engine.Pool.shutdown pool;
      Hashtbl.iter (fun _ c -> try Unix.close c.c_fd with Unix.Unix_error _ -> ()) conns;
      (try Unix.close unix_l with Unix.Unix_error _ -> ());
      (match tcp_l with
      | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
      | None -> ());
      (try Unix.close wake_r with Unix.Unix_error _ -> ());
      (try Unix.close wake_w with Unix.Unix_error _ -> ());
      (try Sys.remove cfg.socket with Sys_error _ -> ());
      match journal with Some j -> Joblog.close j | None -> ())
    (fun () ->
      let running = ref true in
      while !running do
        let listeners =
          if !draining then []
          else unix_l :: (match tcp_l with Some fd -> [ fd ] | None -> [])
        in
        let rfds =
          (wake_r :: listeners)
          @ Hashtbl.fold (fun fd _ acc -> fd :: acc) conns []
        in
        let wfds =
          Hashtbl.fold
            (fun fd c acc -> if Queue.is_empty c.c_out then acc else fd :: acc)
            conns []
        in
        let readable, writable, _ =
          try Unix.select rfds wfds [] 0.25
          with Unix.Unix_error (EINTR, _, _) -> ([], [], [])
        in
        if List.mem wake_r readable then begin
          let buf = Bytes.create 256 in
          try
            while Unix.read wake_r buf 0 256 > 0 do
              ()
            done
          with Unix.Unix_error _ -> ()
        end;
        (* shard completions (may finish jobs, enqueue batches) *)
        let completions =
          Mutex.lock cq_mutex;
          let l = List.of_seq (Queue.to_seq cq) in
          Queue.clear cq;
          Mutex.unlock cq_mutex;
          l
        in
        List.iter on_completion completions;
        List.iter (fun lfd -> if List.mem lfd readable then accept_on lfd) listeners;
        List.iter
          (fun fd ->
            match Hashtbl.find_opt conns fd with
            | None -> ()
            | Some c -> (
              let buf = Bytes.create 65536 in
              match Unix.read fd buf 0 65536 with
              | 0 -> close_conn c
              | n ->
                c.c_last <- now ();
                c.c_in <- c.c_in ^ Bytes.sub_string buf 0 n;
                parse_frames c
              | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> ()
              | exception Unix.Unix_error _ -> close_conn c))
          readable;
        List.iter
          (fun fd ->
            match Hashtbl.find_opt conns fd with
            | Some c -> flush_conn c
            | None -> ())
          writable;
        (* backpressure + idle reaping *)
        let t = now () in
        let victims =
          Hashtbl.fold
            (fun _ c acc ->
              if c.c_out_bytes > cfg.max_buffered then c :: acc
              else if
                cfg.idle_timeout > 0.
                && c.c_jobs = 0
                && Queue.is_empty c.c_out
                && t -. c.c_last > cfg.idle_timeout
              then c :: acc
              else acc)
            conns []
        in
        List.iter close_conn victims;
        if !stop_now then begin
          Hashtbl.iter (fun _ c -> send c Wire.Bye) conns;
          flush_all_deadline 2.0;
          running := false
        end
        else if !draining && !active_jobs = 0 then begin
          (* drained: every in-flight job has finished and its batches
             are queued; flush them, then say goodbye *)
          Hashtbl.iter (fun _ c -> send c Wire.Bye) conns;
          flush_all_deadline 5.0;
          running := false
        end
      done;
      {
        connections = !n_conns;
        admitted = !n_admitted;
        completed = !n_completed;
        failed = !n_failed;
        resumed = !n_resumed;
      })
