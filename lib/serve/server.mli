(** The campaign service: a long-running, sharded injection server.

    [run] binds a Unix-domain socket (plus an optional TCP listener),
    spawns a persistent warm {!Engine.Pool}, and serves {!Wire} jobs: a
    submitted job (workload x tools x categories x trials x seed) is
    validated, acknowledged, sharded into trial ranges, executed on the
    pool, and streamed back as per-shard verdict batches followed by the
    final CSV and its digest.

    Determinism: every shard runs through
    {!Core.Campaign.run_cell_range}, whose per-trial RNG streams make
    the merged result byte-identical to an offline [fi campaign] /
    [fi diagnose] of the same spec, for {e any} shard size or pool
    width.  Overlapping submissions are admitted onto the {e same}
    in-flight cell computations (keyed by {!Plan.cell_id}) and simply
    receive the same batches.

    Amortization: workloads stay prepared (compiled, golden-run,
    profiled) across jobs in a shared cache, and each pool domain keeps
    a fast-forward runner per cell in domain-local storage — the warm
    path skips everything but the trials themselves (measured by
    [bench/main.ml]'s SERVE section).

    Crash recovery: with a journal configured, every admitted job and
    every completed shard tally is checkpointed ({!Joblog}); a SIGKILLed
    server re-admits unfinished jobs on restart, re-running only the
    missing shards, and writes their results to the job's server-side
    output path.  SIGTERM (when [handle_signals]) and a
    [Shutdown {drain = true}] request both drain: no new jobs are
    admitted, in-flight jobs finish and stream completely, then every
    client gets [Bye]. *)

type config = {
  socket : string;  (** Unix-domain socket path; a stale file is replaced *)
  tcp : (string * int) option;  (** optional additional TCP listener *)
  pool_size : int;
  chunk : int option;
      (** shard size; [None] = {!Plan.default_chunk} per job *)
  journal : string option;  (** checkpoint path; [None] = no recovery *)
  base : Core.Campaign.config;
      (** tool policies + snapshot mode; each job overrides trials/seed *)
  idle_timeout : float;  (** close idle job-less connections; [<= 0.] = never *)
  max_buffered : int;
      (** per-connection output backpressure: a peer that stops reading
          is dropped once this many bytes are queued (its jobs finish
          headless — journal and output file still happen) *)
  handle_signals : bool;
      (** install SIGTERM/SIGINT -> drain handlers; off for in-process
          embedding (tests, bench) *)
  name : string;  (** server name reported in [Welcome] *)
}

val default : socket:string -> config
(** Defaults: no TCP, {!Engine.Pool.default_size} workers, automatic
    chunking, no journal, {!Core.Campaign.default_config} base, no idle
    timeout, 8 MiB output backpressure, no signal handlers. *)

type stats = {
  connections : int;
  admitted : int;  (** jobs accepted from clients this run *)
  completed : int;  (** jobs finished (including resumed ones) *)
  failed : int;
  resumed : int;  (** unfinished journaled jobs re-admitted at startup *)
}

val run : ?on_ready:(unit -> unit) -> config -> stats
(** Serve until a shutdown request (or SIGTERM under [handle_signals]).
    [on_ready] fires once the listeners are bound and journal recovery
    has been admitted — the moment a client may connect. *)
