(* Pure codec for the campaign-service wire protocol; see the .mli. *)

(* v2 added the fault-model field to Submit jobs and Batch frames. *)
let version = 2
let max_payload = 1 lsl 24
let magic = '\xf5'

type job = {
  j_workload : string;
  j_tools : Core.Campaign.tool list;
  j_categories : Core.Category.t list;
  j_model : Core.Fault_model.t;
  j_trials : int;
  j_seed : int;
  j_out : string option;
}

type client_msg =
  | Hello of { client : string }
  | Submit of job
  | Shutdown of { drain : bool }
  | Ping

type batch = {
  b_job : int;
  b_tool : Core.Campaign.tool;
  b_category : Core.Category.t;
  b_model : Core.Fault_model.t;
  b_first : int;
  b_count : int;
  b_population : int;
  b_tally : Core.Verdict.tally;
}

type server_msg =
  | Welcome of { server : string; pool : int }
  | Ack of { job : int }
  | Batch of batch
  | Job_done of { job : int; csv : string; digest : string }
  | Error of { job : int option; message : string }
  | Pong
  | Bye

(* --- encoding primitives --- *)

let u8 b v = Buffer.add_char b (Char.chr (v land 0xff))

let u32 b v =
  u8 b (v lsr 24);
  u8 b (v lsr 16);
  u8 b (v lsr 8);
  u8 b v

(* Full-width ints (trials, seeds, tallies) travel as 8 bytes big-endian
   two's complement, so negative values round-trip. *)
let i64 b v =
  let v = Int64.of_int v in
  for k = 7 downto 0 do
    u8 b (Int64.to_int (Int64.shift_right_logical v (8 * k)) land 0xff)
  done

let str b s =
  u32 b (String.length s);
  Buffer.add_string b s

let boolean b v = u8 b (if v then 1 else 0)

let tool_code = function
  | Core.Campaign.Llfi_tool -> 0
  | Core.Campaign.Pinfi_tool -> 1

let tool b t = u8 b (tool_code t)
let category b c = str b (Core.Category.name c)

(* Models travel by name (like categories) so the codec needs no update
   when a parameterized model grows a new argument range. *)
let model b m = str b (Core.Fault_model.name m)

let tally b (t : Core.Verdict.tally) =
  i64 b t.trials;
  i64 b t.benign;
  i64 b t.sdc;
  i64 b t.crash;
  i64 b t.hang;
  i64 b t.not_activated;
  i64 b t.not_injected

let list_ b f xs =
  u32 b (List.length xs);
  List.iter (f b) xs

let option_ b f = function
  | None -> boolean b false
  | Some v ->
    boolean b true;
    f b v

let frame payload =
  let b = Buffer.create (String.length payload + 6) in
  Buffer.add_char b magic;
  u8 b version;
  u32 b (String.length payload);
  Buffer.add_string b payload;
  Buffer.contents b

let with_payload build =
  let b = Buffer.create 64 in
  build b;
  frame (Buffer.contents b)

let encode_client msg =
  with_payload @@ fun b ->
  match msg with
  | Hello { client } ->
    u8 b 1;
    str b client
  | Submit j ->
    u8 b 2;
    str b j.j_workload;
    list_ b tool j.j_tools;
    list_ b category j.j_categories;
    model b j.j_model;
    i64 b j.j_trials;
    i64 b j.j_seed;
    option_ b str j.j_out
  | Shutdown { drain } ->
    u8 b 3;
    boolean b drain
  | Ping -> u8 b 4

let encode_server msg =
  with_payload @@ fun b ->
  match msg with
  | Welcome { server; pool } ->
    u8 b 1;
    str b server;
    i64 b pool
  | Ack { job } ->
    u8 b 2;
    i64 b job
  | Batch bt ->
    u8 b 3;
    i64 b bt.b_job;
    tool b bt.b_tool;
    category b bt.b_category;
    model b bt.b_model;
    i64 b bt.b_first;
    i64 b bt.b_count;
    i64 b bt.b_population;
    tally b bt.b_tally
  | Job_done { job; csv; digest } ->
    u8 b 4;
    i64 b job;
    str b csv;
    str b digest
  | Error { job; message } ->
    u8 b 5;
    option_ b (fun b j -> i64 b j) job;
    str b message
  | Pong -> u8 b 6
  | Bye -> u8 b 7

(* --- decoding --- *)

type 'a decoded = Need_more | Got of 'a * int | Bad of string

(* Internal only; both are caught by [decode] and turned into [Bad], so
   the exported decoders are total. *)
exception Short
exception Bad_frame of string

type rd = { s : string; mutable pos : int; fin : int }

let ru8 r =
  if r.pos >= r.fin then raise Short;
  let c = Char.code r.s.[r.pos] in
  r.pos <- r.pos + 1;
  c

let ru32 r =
  let a = ru8 r in
  let b = ru8 r in
  let c = ru8 r in
  let d = ru8 r in
  (a lsl 24) lor (b lsl 16) lor (c lsl 8) lor d

let ri64 r =
  let v = ref 0L in
  for _ = 1 to 8 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (ru8 r))
  done;
  Int64.to_int !v

let rstr r =
  let n = ru32 r in
  if n > r.fin - r.pos then raise Short;
  let s = String.sub r.s r.pos n in
  r.pos <- r.pos + n;
  s

let rboolean r =
  match ru8 r with
  | 0 -> false
  | 1 -> true
  | n -> raise (Bad_frame (Printf.sprintf "bad boolean byte %d" n))

let rtool r =
  match ru8 r with
  | 0 -> Core.Campaign.Llfi_tool
  | 1 -> Core.Campaign.Pinfi_tool
  | n -> raise (Bad_frame (Printf.sprintf "bad tool code %d" n))

let rcategory r =
  let s = rstr r in
  match Core.Category.of_string s with
  | Some c -> c
  | None -> raise (Bad_frame (Printf.sprintf "unknown category %S" s))

let rmodel r =
  let s = rstr r in
  match Core.Fault_model.of_name s with
  | Some m -> m
  | None -> raise (Bad_frame (Printf.sprintf "unknown fault model %S" s))

let rtally r =
  let trials = ri64 r in
  let benign = ri64 r in
  let sdc = ri64 r in
  let crash = ri64 r in
  let hang = ri64 r in
  let not_activated = ri64 r in
  let not_injected = ri64 r in
  { Core.Verdict.trials; benign; sdc; crash; hang; not_activated; not_injected }

let rlist r f =
  let n = ru32 r in
  if n > 4096 then raise (Bad_frame "list too long");
  List.init n (fun _ -> f r)

let roption r f = if rboolean r then Some (f r) else None

let be32 s off =
  (Char.code s.[off] lsl 24)
  lor (Char.code s.[off + 1] lsl 16)
  lor (Char.code s.[off + 2] lsl 8)
  lor Char.code s.[off + 3]

let decode parse s =
  let len = String.length s in
  if len < 6 then Need_more
  else if s.[0] <> magic then Bad "bad frame magic"
  else if Char.code s.[1] <> version then
    Bad
      (Printf.sprintf "protocol version %d, this peer speaks %d"
         (Char.code s.[1]) version)
  else begin
    let plen = be32 s 2 in
    if plen > max_payload then Bad "oversized frame"
    else if len < 6 + plen then Need_more
    else begin
      let r = { s; pos = 6; fin = 6 + plen } in
      match parse r with
      | msg ->
        (* A well-formed frame is consumed exactly: trailing payload
           bytes mean the peer and we disagree on the message layout. *)
        if r.pos <> r.fin then Bad "trailing bytes in frame"
        else Got (msg, 6 + plen)
      | exception Short -> Bad "truncated frame body"
      | exception Bad_frame m -> Bad m
    end
  end

let parse_client r =
  match ru8 r with
  | 1 ->
    let client = rstr r in
    Hello { client }
  | 2 ->
    let j_workload = rstr r in
    let j_tools = rlist r rtool in
    let j_categories = rlist r rcategory in
    let j_model = rmodel r in
    let j_trials = ri64 r in
    let j_seed = ri64 r in
    let j_out = roption r rstr in
    Submit
      { j_workload; j_tools; j_categories; j_model; j_trials; j_seed; j_out }
  | 3 ->
    let drain = rboolean r in
    Shutdown { drain }
  | 4 -> Ping
  | n -> raise (Bad_frame (Printf.sprintf "unknown client tag %d" n))

let parse_server r =
  match ru8 r with
  | 1 ->
    let server = rstr r in
    let pool = ri64 r in
    Welcome { server; pool }
  | 2 ->
    let job = ri64 r in
    Ack { job }
  | 3 ->
    let b_job = ri64 r in
    let b_tool = rtool r in
    let b_category = rcategory r in
    let b_model = rmodel r in
    let b_first = ri64 r in
    let b_count = ri64 r in
    let b_population = ri64 r in
    let b_tally = rtally r in
    Batch
      {
        b_job;
        b_tool;
        b_category;
        b_model;
        b_first;
        b_count;
        b_population;
        b_tally;
      }
  | 4 ->
    let job = ri64 r in
    let csv = rstr r in
    let digest = rstr r in
    Job_done { job; csv; digest }
  | 5 ->
    let job = roption r ri64 in
    let message = rstr r in
    Error { job; message }
  | 6 -> Pong
  | 7 -> Bye
  | n -> raise (Bad_frame (Printf.sprintf "unknown server tag %d" n))

let decode_client s = decode parse_client s
let decode_server s = decode parse_server s
