(** Seeded random MiniC program generator.

    Programs are well-formed and always terminating by construction:

    - every division/modulus divisor is forced positive ([(e & 15) + 1]
      or a positive constant), so no division traps or [min_int / -1]
      overflow;
    - shift amounts are constants in [0, 7];
    - array subscripts are masked to the (power-of-two) array length;
    - [for] loops run a constant number of iterations over a fresh
      index variable the body can never reassign; [while] loops carry
      an explicit fuel counter decremented first thing in the body;
    - helper functions only call helpers generated before them, so the
      call graph is acyclic;
    - no [input()] calls — programs run on an empty input vector.

    Observability: a global [acc] checksum is threaded through the
    statements and printed at the end of [main], alongside scattered
    [print_int]/[print_double]/[print_char] statements, so silent
    miscompilations surface as output differences. *)

val generate : seed:int -> ?size:int -> unit -> Minic.Ast.program
(** Deterministic in [seed].  [size] scales the statement budget of
    [main] (default 14). *)

val source : seed:int -> ?size:int -> unit -> string
(** [Pp.program (generate ~seed ())]. *)
