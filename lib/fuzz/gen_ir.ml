(* Direct IR construction for the differential oracle.  The program
   shape is a fixed, known-terminating skeleton (a data loop over a
   global array feeding a helper, an i8 narrowing chain, a select
   ladder, a pointer round-trip); the rng picks every constant, array
   content, binop and comparison inside it. *)

module B = Ir.Builder
module Rng = Support.Rng
open Ir

let safe_binops =
  [| Instr.Add; Instr.Sub; Instr.Mul; Instr.And; Instr.Or; Instr.Xor |]

let ucmp = [| Instr.Iult; Instr.Iule; Instr.Iugt; Instr.Iuge |]
let scmp = [| Instr.Islt; Instr.Isle; Instr.Isgt; Instr.Isge; Instr.Ieq; Instr.Ine |]

let pick rng arr = arr.(Rng.int rng (Array.length arr))

(* A divisor that can never be zero: (x & 15) + 1. *)
let guarded_divisor b x =
  let m = B.binop b Instr.And x (Operand.i64 15) in
  B.binop b Instr.Add m (Operand.i64 1)

(* mix(a, x): unsigned ops, a diamond with a phi, a select. *)
let build_mix rng prog =
  let b, params =
    B.start_function prog ~name:"mix"
      ~params:[ ("a", Types.I64); ("x", Types.I64) ]
      ~ret_ty:Types.I64
  in
  let a, x = (List.nth params 0, List.nth params 1) in
  let entry = B.block b "entry" in
  let odd = B.block b "odd" in
  let even = B.block b "even" in
  let join = B.block b "join" in
  B.position_at_end b entry;
  let d = guarded_divisor b x in
  let q =
    B.binop b (if Rng.bool rng then Instr.Udiv else Instr.Sdiv) a d
  in
  let r =
    B.binop b (if Rng.bool rng then Instr.Urem else Instr.Srem) x d
  in
  let parity = B.binop b Instr.And x (Operand.i64 1) in
  let c = B.icmp b Instr.Ieq parity (Operand.i64 1) in
  B.cond_br b c odd even;
  B.position_at_end b odd;
  let vo = B.binop b (pick rng safe_binops) q (Operand.i64 (Rng.int rng 1024)) in
  B.br b join;
  B.position_at_end b even;
  let ve = B.binop b (pick rng safe_binops) r a in
  B.br b join;
  B.position_at_end b join;
  let m = B.phi b [ (vo, odd.Block.label); (ve, even.Block.label) ] in
  let sh = B.binop b Instr.Lshr m (Operand.i64 (Rng.int rng 8)) in
  let cu = B.icmp b (pick rng ucmp) sh a in
  let sel = B.select b cu sh (B.binop b (pick rng safe_binops) m x) in
  B.ret b (Some sel)

let generate ~seed () =
  let rng = Rng.of_int seed in
  let prog = Prog.create () in
  let len = if Rng.bool rng then 8 else 16 in
  let data = List.init len (fun _ -> Rng.int rng 100_000) in
  Prog.add_global prog
    {
      Prog.gname = "gdata";
      gty = Types.Arr (len, Types.I64);
      ginit = Prog.Ints data;
    };
  build_mix rng prog;
  let b, _ = B.start_function prog ~name:"main" ~params:[] ~ret_ty:Types.I64 in
  let entry = B.block b "entry" in
  let loop = B.block b "loop" in
  let after = B.block b "after" in
  B.position_at_end b entry;
  (* a local array seeded from an i8 chain through the global data *)
  let arr_len = 8 in
  let arr = B.alloca b (Types.Arr (arr_len, Types.I64)) in
  (* initialize every slot so the masked stores below can't leave the
     round-trip load reading unwritten memory *)
  for j = 0 to arr_len - 1 do
    let jp = B.gep b arr [ Operand.i64 0; Operand.i64 j ] in
    B.store b (Operand.i64 (Rng.int rng 64)) jp
  done;
  B.br b loop;
  B.position_at_end b loop;
  let gbase = Operand.Global ("gdata", Types.Ptr (Types.Arr (len, Types.I64))) in
  let i = B.phi b [ (Operand.i64 0, entry.Block.label) ] ~name:"i" in
  let acc = B.phi b [ (Operand.i64 (Rng.int rng 1000), entry.Block.label) ] ~name:"acc" in
  let p = B.gep b gbase [ Operand.i64 0; i ] in
  let v = B.load b p in
  let mixed = B.call b "mix" [ acc; v ] in
  (* i8 narrowing chain: wraparound at 8 bits is the point *)
  let narrow = B.cast b Instr.Trunc mixed ~to_:Types.I8 in
  let bumped =
    B.binop b (pick rng [| Instr.Add; Instr.Mul; Instr.Xor |]) narrow
      (Operand.i8 (Rng.int rng 256 - 128))
  in
  let wide = B.cast b (if Rng.bool rng then Instr.Zext else Instr.Sext) bumped ~to_:Types.I64 in
  let acc' = B.binop b (pick rng safe_binops) mixed wide in
  (* store into the local array at a masked slot *)
  let slot = B.binop b Instr.And acc' (Operand.i64 (arr_len - 1)) in
  let ep = B.gep b arr [ Operand.i64 0; slot ] in
  B.store b acc' ep;
  let i' = B.binop b Instr.Add i (Operand.i64 1) in
  B.add_phi_incoming b i (i', B.insertion_block b);
  B.add_phi_incoming b acc (acc', B.insertion_block b);
  let c = B.icmp b Instr.Islt i' (Operand.i64 len) in
  B.cond_br b c loop after;
  B.position_at_end b after;
  (* pointer round-trip: ptrtoint/inttoptr must preserve the address *)
  let k = Rng.int rng arr_len in
  let kp = B.gep b arr [ Operand.i64 0; Operand.i64 k ] in
  let ki = B.cast b Instr.Ptrtoint kp ~to_:Types.I64 in
  let kp' = B.cast b Instr.Inttoptr ki ~to_:(Types.Ptr Types.I64) in
  let kv = B.load b kp' in
  (* select ladder over signed/unsigned comparisons of the results *)
  let x = ref (B.binop b (pick rng safe_binops) acc' kv) in
  for _ = 1 to 2 + Rng.int rng 3 do
    let cmp_kind = if Rng.bool rng then pick rng scmp else pick rng ucmp in
    let c = B.icmp b cmp_kind !x (Operand.i64 (Rng.int rng 4096)) in
    let alt = B.binop b (pick rng safe_binops) !x (Operand.i64 (Rng.int rng 512)) in
    x := B.select b c alt !x
  done;
  ignore (B.intrinsic b Instr.Print_i64 [ !x ]);
  ignore (B.intrinsic b Instr.Print_newline []);
  ignore (B.intrinsic b Instr.Print_i64 [ kv ]);
  ignore (B.intrinsic b Instr.Print_newline []);
  B.ret b (Some (Operand.i64 0));
  Verify.check_prog_exn prog;
  prog

let text ~seed () = Printer.prog_to_string (generate ~seed ())
