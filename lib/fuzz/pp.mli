(** MiniC pretty-printer: AST back to parseable source text.

    The inverse of {!Minic.Parser.parse_program}, up to formatting:
    [parse_program (program p)] succeeds for every AST the fuzzer's
    generator or minimizer produces and denotes the same program.
    Expressions are printed fully parenthesized so no precedence
    reconstruction is needed; printing is a fixpoint after one
    round-trip ([program (parse (program p)) = program (parse ...)]),
    which test_fuzz.ml checks. *)

val expr : Minic.Ast.expr -> string
val stmt : ?indent:int -> Minic.Ast.stmt -> string
val top : Minic.Ast.top -> string

val program : Minic.Ast.program -> string
(** The whole translation unit, one top-level item per paragraph. *)

val line_count : string -> int
(** Non-blank lines — the size metric the minimizer reports and the
    repro-size acceptance bound uses. *)
