(** Injection-space coverage: how much of the fault space the samplers
    can ever reach, and how much N trials actually visit.

    For every workload x tool x category cell this reports:

    - {e static sites}: instructions the tool's classifier accepts for
      the category (LLFI: IR instructions with a nonzero mask; PINFI:
      loaded x86 instructions);
    - {e reachable sites}: static sites with at least one dynamic
      instance on the golden run — only these can ever be selected,
      because both samplers draw uniformly over {e dynamic} instances;
    - {e selected sites / bits}: what the cell's first N trials — the
      exact trial streams a campaign with the same seed would use, per
      the {!Core.Campaign.target_draw} contract — actually hit, at
      site and (site, bit-position, fault-model) granularity;
    - the most-sampled site's observed share against its expected
      share (its fraction of the dynamic population), surfacing
      sampler bias toward hot code;
    - dead cells (categories with no dynamic instances), which a
      campaign silently skips.

    The report is byte-identical for every [jobs] value: trials are
    collected through {!Engine.Scheduler.run}'s observer into
    commutative per-cell tables and rendered in canonical order. *)

type cell = {
  cov_workload : string;
  cov_tool : Core.Campaign.tool;
  cov_category : Core.Category.t;
  cov_static : int;  (** classifier-accepted static sites *)
  cov_reachable : int;  (** static sites with dynamic instances *)
  cov_selected : int;  (** distinct sites hit in the trials *)
  cov_bit_space : int;
      (** (site, bit, model) faults over the reachable sites: each
          bit-drawing model contributes a site's flippable width, Skip
          and Load_value one fault per site *)
  cov_bits_hit : int;  (** distinct (site, bit, model) triples hit *)
  cov_population : int;  (** dynamic instances in the category *)
  cov_trials : int;
  cov_top_share : float;  (** observed share of the most-hit site *)
  cov_top_expected : float;  (** that site's dynamic-population share *)
}

type report = {
  cells : cell list;
  dead : (string * string * string) list;
  models : string list;  (** the fault models measured, by name *)
}

val measure :
  ?jobs:int ->
  ?workloads:Core.Workload.t list ->
  ?models:Core.Fault_model.t list ->
  trials:int ->
  seed:int ->
  unit ->
  report
(** Runs the covered cells' trials through the engine (defaults: all
    registered workloads, both tools, all categories, the bitflip
    model).  With several [models], each model runs its own [trials]
    injections per cell and the per-cell tables accumulate over the
    whole model list. *)

val render : report -> string
(** The textual report [fi fuzz --coverage] prints. *)
