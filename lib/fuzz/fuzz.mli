(** Differential fuzzing driver: generate, compare, minimize, report.

    Library interface module; the pieces are re-exported for tests and
    the [fi fuzz] subcommand. *)

module Pp = Pp
module Gen = Gen
module Gen_ir = Gen_ir
module Oracle = Oracle
module Mutate = Mutate
module Minimize = Minimize
module Coverage = Coverage

type finding = {
  f_seed : int;
  f_kind : [ `Minic | `Ir ];
  f_divergences : Oracle.divergence list;
  f_source : string;  (** the program as generated *)
  f_minimized : string option;  (** MiniC findings only *)
  f_minimize_tests : int;
}

type summary = {
  s_programs : int;
  s_minic : int;
  s_ir : int;
  s_stages : int;  (** total stage comparisons performed *)
  s_invalid : int;  (** generator artifacts (should stay 0) *)
  s_findings : finding list;
}

val subject_of_seed : int -> [ `Minic | `Ir ] * Oracle.subject
(** The deterministic seed -> program mapping of the campaign: every
    fourth program is generated directly at the IR level, the rest
    through the MiniC grammar. *)

val campaign :
  ?mutate:Mutate.t ->
  ?max_repros:int ->
  ?minimize_budget:int ->
  seed:int ->
  count:int ->
  unit ->
  summary
(** Run programs [seed .. seed+count-1] through the oracle.  The first
    [max_repros] (default 5) divergent MiniC programs are minimized —
    with the keep-predicate "still diverges, and still agrees without
    the planted mutation" when [mutate] is set, so shrinking cannot
    drift off the planted bug. *)

val render_summary : ?mutate:Mutate.t -> summary -> string

val write_corpus : dir:string -> summary -> string list
(** Write each finding's minimized (or, failing that, original) form
    under [dir] as [seed-NNNN.c] / [seed-NNNN.ll]; returns the paths.
    Creates [dir] if needed. *)

val check_corpus_file : string -> (int, string) Stdlib.result
(** Replay one corpus file ([.c] -> MiniC subject, [.ll] -> IR subject)
    through every oracle stage; [Ok stages] when all agree. *)
