type subject = Minic_src of string | Ir_src of string

type divergence = { d_stage : string; d_expected : string; d_got : string }

type result = Agree of int | Diverged of divergence list | Invalid of string

(* Fresh IR per stage: passes mutate their input in place, so each
   stage must start from its own lowering. *)
let lower = function
  | Minic_src src -> Minic.compile src
  | Ir_src text ->
    let p = Ir.Parse.prog text in
    (match Ir.Verify.check_prog p with
    | [] -> p
    | errs ->
      invalid_arg
        (String.concat "; "
           (List.map (fun e -> Fmt.str "%a" Ir.Verify.pp_error e) errs)))

let render (st : Vm.Outcome.stats) =
  match st.Vm.Outcome.outcome with
  | Vm.Outcome.Finished out -> "output:" ^ out
  | Vm.Outcome.Crashed t -> "crash:" ^ Vm.Trap.tag t
  | Vm.Outcome.Hung -> "hang"

let verify_or_fail stage prog =
  match Ir.Verify.check_prog prog with
  | [] -> ()
  | errs ->
    invalid_arg
      (Fmt.str "invalid IR after %s: %a" stage Ir.Verify.pp_error
         (List.hd errs))

let passes =
  [
    ("simplify", Opt.Simplify.run);
    ("mem2reg", Opt.Mem2reg.run);
    ("constfold", Opt.Constfold.run);
    ("cse", Opt.Cse.run);
    ("dce", Opt.Dce.run);
    ("inline", fun p -> Opt.Inline.run p);
  ]

let stage_names = List.map fst passes @ [ "opt"; "asm" ]

(* The reference runs on a generous fixed budget (generated programs
   terminate by construction, real hangs mean a broken subject);
   stages get 10x the reference's dynamic length, the assembly stage
   40x (one IR instruction lowers to several x86 ones). *)
let ref_budget = 20_000_000

let ir_behaviour ~budget prog =
  render (Vm.Ir_exec.run ~max_steps:budget (Vm.Ir_exec.compile prog))

let guard stage f =
  match f () with
  | behaviour -> behaviour
  | exception Invalid_argument msg -> Printf.sprintf "error in %s: %s" stage msg
  | exception Minic.Compile_error msg ->
    Printf.sprintf "error in %s: %s" stage msg

(* Telemetry (lib/obs): one program / one comparison per stage, so the
   counters are exact even when a stage errors out. *)
let m_programs = Obs.Metrics.counter "fuzz.programs"
let m_stage_comparisons = Obs.Metrics.counter "fuzz.stage_comparisons"
let m_divergences = Obs.Metrics.counter "fuzz.divergences"

let staged stage f =
  Obs.Metrics.incr m_stage_comparisons;
  if Obs.Trace.on () then
    Obs.Trace.span "stage" ~args:[ ("stage", stage) ] f
  else f ()

let run ?mutate subject =
  Obs.Metrics.incr m_programs;
  match lower subject with
  | exception Minic.Compile_error msg -> Invalid msg
  | exception Ir.Parse.Error msg -> Invalid msg
  | exception Invalid_argument msg -> Invalid msg
  | ref_prog -> (
    match Vm.Ir_exec.run ~max_steps:ref_budget (Vm.Ir_exec.compile ref_prog) with
    | exception Invalid_argument msg -> Invalid msg
    | { Vm.Outcome.outcome = Vm.Outcome.Hung; _ } ->
      Invalid "reference run exceeded its step budget"
    | ref_stats ->
      let expected = render ref_stats in
      let budget = (ref_stats.Vm.Outcome.steps * 10) + 10_000 in
      let asm_budget = (ref_stats.Vm.Outcome.steps * 40) + 100_000 in
      let stage_behaviours =
        List.map
          (fun (stage, pass) ->
            ( stage,
              staged stage (fun () ->
                  guard stage (fun () ->
                      let p = lower subject in
                      pass p;
                      verify_or_fail stage p;
                      ir_behaviour ~budget p)) ))
          passes
        @ [
            ( "opt",
              staged "opt" (fun () ->
                  guard "opt" (fun () ->
                      let p = Opt.optimize (lower subject) in
                      (match mutate with
                      | Some m ->
                        ignore (Mutate.apply m p);
                        verify_or_fail "mutation" p
                      | None -> ());
                      ir_behaviour ~budget p)) );
            ( "asm",
              staged "asm" (fun () ->
                  guard "asm" (fun () ->
                      let p = Opt.optimize (lower subject) in
                      let asm = Backend.compile p in
                      render
                        (Vm.X86_exec.run ~max_steps:asm_budget
                           (Vm.X86_exec.load asm)))) );
          ]
      in
      let diffs =
        List.filter_map
          (fun (stage, got) ->
            if String.equal got expected then None
            else Some { d_stage = stage; d_expected = expected; d_got = got })
          stage_behaviours
      in
      if diffs <> [] then Obs.Metrics.incr m_divergences;
      if diffs = [] then Agree (List.length stage_behaviours)
      else Diverged diffs)

let diverges ?mutate subject =
  match run ?mutate subject with Diverged _ -> true | _ -> false

let truncate_for_pp s =
  if String.length s <= 80 then s else String.sub s 0 77 ^ "..."

let pp_result ppf = function
  | Agree n -> Format.fprintf ppf "agree (%d stages)" n
  | Invalid msg -> Format.fprintf ppf "invalid subject: %s" msg
  | Diverged ds ->
    Format.fprintf ppf "DIVERGED:";
    List.iter
      (fun d ->
        Format.fprintf ppf "@\n  stage %-10s expected %S@\n  %-16s got %S"
          d.d_stage (truncate_for_pp d.d_expected) "" (truncate_for_pp d.d_got))
      ds
