(** Planted compiler bugs, for validating the differential oracle.

    Each mutation is a small, type-preserving IR rewrite applied after
    the optimization pipeline — a stand-in for a real miscompilation.
    [fi fuzz --mutate NAME] must then find and minimize a divergence;
    scripts/ci.sh runs exactly that as its mutation smoke test. *)

type t =
  | Add_to_sub  (** first integer [add] becomes [sub] *)
  | Cmp_flip  (** first signed [icmp] predicate is negated *)
  | Drop_store  (** first [store] in [main] is deleted *)

val all : t list
val name : t -> string
val of_name : string -> t option

val apply : t -> Ir.Prog.t -> bool
(** Mutate the program in place; [false] if no applicable site exists.
    The result still passes {!Ir.Verify.check_prog}. *)
