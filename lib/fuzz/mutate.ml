type t = Add_to_sub | Cmp_flip | Drop_store

let all = [ Add_to_sub; Cmp_flip; Drop_store ]

let name = function
  | Add_to_sub -> "add-to-sub"
  | Cmp_flip -> "cmp-flip"
  | Drop_store -> "drop-store"

let of_name s = List.find_opt (fun m -> String.equal (name m) s) all

let negate_icmp (c : Ir.Instr.icmp) =
  match c with
  | Ir.Instr.Ieq -> Ir.Instr.Ine
  | Ir.Instr.Ine -> Ir.Instr.Ieq
  | Ir.Instr.Islt -> Ir.Instr.Isge
  | Ir.Instr.Isle -> Ir.Instr.Isgt
  | Ir.Instr.Isgt -> Ir.Instr.Isle
  | Ir.Instr.Isge -> Ir.Instr.Islt
  | Ir.Instr.Iult -> Ir.Instr.Iuge
  | Ir.Instr.Iule -> Ir.Instr.Iugt
  | Ir.Instr.Iugt -> Ir.Instr.Iule
  | Ir.Instr.Iuge -> Ir.Instr.Iult

(* Rewrite the first instruction [f] accepts, anywhere in [funcs]. *)
let rewrite_first funcs f =
  let hit = ref false in
  List.iter
    (fun (fn : Ir.Func.t) ->
      if not !hit then
        List.iter
          (fun (b : Ir.Block.t) ->
            if not !hit then
              b.Ir.Block.instrs <-
                List.concat_map
                  (fun (i : Ir.Instr.t) ->
                    if !hit then [ i ]
                    else
                      match f i with
                      | None -> [ i ]
                      | Some repl ->
                        hit := true;
                        repl)
                  b.Ir.Block.instrs)
          fn.Ir.Func.blocks)
    funcs;
  !hit

let apply m (prog : Ir.Prog.t) =
  let funcs =
    match m with
    | Drop_store ->
      (* dropping a store only in main keeps the repro's story simple *)
      (match Ir.Prog.find_func prog "main" with
      | Some f -> [ f ]
      | None -> prog.Ir.Prog.funcs)
    | _ -> prog.Ir.Prog.funcs
  in
  rewrite_first funcs (fun (i : Ir.Instr.t) ->
      match (m, i.Ir.Instr.kind) with
      | Add_to_sub, Ir.Instr.Binop (Ir.Instr.Add, a, b) ->
        Some [ { i with Ir.Instr.kind = Ir.Instr.Binop (Ir.Instr.Sub, a, b) } ]
      | Cmp_flip, Ir.Instr.Icmp (c, a, b) ->
        Some [ { i with Ir.Instr.kind = Ir.Instr.Icmp (negate_icmp c, a, b) } ]
      | Drop_store, Ir.Instr.Store _ -> Some []
      | _ -> None)
