(** The differential/metamorphic oracle.

    One subject program is run through every level of the pipeline —

    - [ref]: MiniC (or parsed IR) lowered without optimization,
      interpreted at the IR level: the reference behaviour;
    - one stage per optimization pass ([simplify], [mem2reg],
      [constfold], [cse], [dce], [inline]): a fresh lowering with just
      that pass applied (passes mutate IR in place, so every stage
      re-lowers from source);
    - [opt]: the full standard pipeline;
    - [asm]: full pipeline, backend code generation, x86 interpreter

    — and every stage's behaviour must equal the reference (the
    metamorphic property: optimization and lowering preserve
    semantics).  Behaviours compare as: exact output bytes for finished
    runs, the {!Vm.Trap.tag} for crashes (trap {e payloads} such as
    addresses legitimately differ across levels), and a [hang] marker
    for exceeded step budgets (10x the reference run at the IR level,
    40x for the assembly level's finer-grained instructions). *)

type subject =
  | Minic_src of string  (** MiniC source text *)
  | Ir_src of string  (** textual IR, {!Ir.Parse} format *)

type divergence = { d_stage : string; d_expected : string; d_got : string }

type result =
  | Agree of int  (** number of stages compared *)
  | Diverged of divergence list
  | Invalid of string
      (** the subject itself doesn't compile/verify/terminate — a
          generator or minimizer artifact, not a finding *)

val stage_names : string list

val run : ?mutate:Mutate.t -> subject -> result
(** [mutate] plants the given bug into the [opt] stage (only), so a
    divergence report names the stage that carries it. *)

val diverges : ?mutate:Mutate.t -> subject -> bool
(** [run] yields [Diverged _] — the minimizer's keep-predicate. *)

val pp_result : Format.formatter -> result -> unit
