(** Seeded direct-to-IR program generator.

    Complements {!Gen} with constructs MiniC cannot express: unsigned
    arithmetic ([udiv]/[urem]/[lshr]), unsigned comparisons, [select]
    on freshly computed [i1]s, narrow [i8] arithmetic chains through
    [trunc]/[zext], and [ptrtoint]/[inttoptr] round-trips — exercising
    optimizer and backend paths the source-level fuzzer never reaches.

    Same safety guarantees as {!Gen}: divisors are forced nonzero, loop
    trip counts are constants, all memory traffic stays inside
    generator-allocated objects, and a checksum is printed so silent
    miscompilation is observable. *)

val generate : seed:int -> unit -> Ir.Prog.t
(** Deterministic in [seed]; the result passes {!Ir.Verify.check_prog}. *)

val text : seed:int -> unit -> string
(** [Ir.Printer.prog_to_string (generate ~seed ())] — the serialized
    form the oracle re-parses per stage (optimization passes mutate
    their input in place). *)
