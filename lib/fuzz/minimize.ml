open Minic.Ast

let pos = { Minic.Lexer.line = 0; col = 0 }
let e desc = { desc; pos }

(* --- expression shrinks --- *)

let literal_shrinks (x : expr) =
  match x.desc with
  | Eint v when v <> 0 ->
    [ e (Eint 0) ] @ (if abs v > 2 then [ e (Eint (v / 2)) ] else [])
  | Efloat f when f <> 0.0 -> [ e (Efloat 0.0) ]
  | _ -> []

let rec expr_variants (x : expr) : expr list =
  let rebuild mk kids =
    List.concat
      (List.mapi
         (fun i k ->
           List.map
             (fun k' -> mk (List.mapi (fun j k0 -> if i = j then k' else k0) kids))
             (expr_variants k))
         kids)
  in
  let subexprs, rebuilt =
    match x.desc with
    | Ebinop (op, a, b) ->
      ( [ a; b ],
        rebuild
          (function [ a'; b' ] -> e (Ebinop (op, a', b')) | _ -> x)
          [ a; b ] )
    | Eunop (op, a) ->
      ([ a ], rebuild (function [ a' ] -> e (Eunop (op, a')) | _ -> x) [ a ])
    | Ecast (ty, a) ->
      ([ a ], rebuild (function [ a' ] -> e (Ecast (ty, a')) | _ -> x) [ a ])
    | Eindex (a, i) ->
      ([], rebuild (function [ i' ] -> e (Eindex (a, i')) | _ -> x) [ i ])
    | Ecall (f, args) ->
      ( args,
        rebuild (fun args' -> e (Ecall (f, args'))) args )
    | Ederef a | Eaddr a -> ([ a ], [])
    | _ -> ([], [])
  in
  subexprs @ literal_shrinks x @ rebuilt

(* --- statement shrinks --- *)

(* Replacements of one statement by zero or more simpler ones. *)
let stmt_inline (s : stmt) : stmt list list =
  match s.sdesc with
  | Sif (_, then_, else_) ->
    [ then_ ] @ (if else_ <> [] then [ else_ ] else [])
  | Swhile (_, body) -> [ body ]
  | Sfor (init, _, _, body) ->
    [ (match init with Some i -> [ i ] | None -> []) @ body ]
  | Sblock body -> [ body ]
  | _ -> []

let rec stmt_variants (s : stmt) : stmt list =
  let w sdesc = { s with sdesc } in
  match s.sdesc with
  | Sdecl (ty, n, len, Some init) ->
    w (Sdecl (ty, n, len, None))
    :: List.map (fun i' -> w (Sdecl (ty, n, len, Some i'))) (expr_variants init)
  | Sassign (lhs, rhs) ->
    List.map (fun r' -> w (Sassign (lhs, r'))) (expr_variants rhs)
  | Sexpr x -> List.map (fun x' -> w (Sexpr x')) (expr_variants x)
  | Sif (c, then_, else_) ->
    List.map (fun c' -> w (Sif (c', then_, else_))) (expr_variants c)
    @ List.map (fun t' -> w (Sif (c, t', else_))) (stmts_variants then_)
    @ List.map (fun e' -> w (Sif (c, then_, e'))) (stmts_variants else_)
  | Swhile (c, body) ->
    List.map (fun c' -> w (Swhile (c', body))) (expr_variants c)
    @ List.map (fun b' -> w (Swhile (c, b'))) (stmts_variants body)
  | Sfor (init, cond, step, body) ->
    (match cond with
    | Some c ->
      List.map (fun c' -> w (Sfor (init, Some c', step, body))) (expr_variants c)
    | None -> [])
    @ List.map (fun b' -> w (Sfor (init, cond, step, b'))) (stmts_variants body)
  | Sreturn (Some x) ->
    List.map (fun x' -> w (Sreturn (Some x'))) (expr_variants x)
  | Sblock body -> List.map (fun b' -> w (Sblock b')) (stmts_variants body)
  | Sdecl (_, _, _, None) | Sreturn None | Sbreak | Scontinue -> []

and stmts_variants (ss : stmt list) : stmt list list =
  match ss with
  | [] -> []
  | x :: rest ->
    [ rest ]  (* drop the statement entirely: the most aggressive shrink *)
    @ List.map (fun repl -> repl @ rest) (stmt_inline x)
    @ List.map (fun rest' -> x :: rest') (stmts_variants rest)
    @ List.map (fun x' -> x' :: rest) (stmt_variants x)

(* --- program shrinks --- *)

let variants (prog : program) : program list =
  let drop_tops =
    List.concat
      (List.mapi
         (fun i t ->
           match t with
           | Tfunc (_, "main", _, _) -> []
           | _ -> [ List.filteri (fun j _ -> j <> i) prog ])
         prog)
  in
  let body_edits =
    List.concat
      (List.mapi
         (fun i t ->
           match t with
           | Tfunc (ret, name, params, body) ->
             List.map
               (fun b' ->
                 List.mapi
                   (fun j t' ->
                     if i = j then Tfunc (ret, name, params, b') else t')
                   prog)
               (stmts_variants body)
           | _ -> [])
         prog)
  in
  drop_tops @ body_edits

let minimize ~keep ?(max_tests = 800) prog0 =
  let tests = ref 0 in
  let try_keep p =
    if !tests >= max_tests then false
    else begin
      incr tests;
      keep p
    end
  in
  let rec go prog =
    if !tests >= max_tests then prog
    else
      match List.find_opt try_keep (variants prog) with
      | Some smaller -> go smaller
      | None -> prog
  in
  let result = go prog0 in
  (result, !tests)
