module Pp = Pp
module Gen = Gen
module Gen_ir = Gen_ir
module Oracle = Oracle
module Mutate = Mutate
module Minimize = Minimize
module Coverage = Coverage

type finding = {
  f_seed : int;
  f_kind : [ `Minic | `Ir ];
  f_divergences : Oracle.divergence list;
  f_source : string;
  f_minimized : string option;
  f_minimize_tests : int;
}

type summary = {
  s_programs : int;
  s_minic : int;
  s_ir : int;
  s_stages : int;
  s_invalid : int;
  s_findings : finding list;
}

let subject_of_seed seed =
  if seed mod 4 = 3 then (`Ir, Oracle.Ir_src (Gen_ir.text ~seed ()))
  else (`Minic, Oracle.Minic_src (Gen.source ~seed ()))

(* Minimization keep-predicate.  With a planted mutation the shrink
   must keep BOTH properties — diverges with the mutation, agrees
   without it — or deletion could drift onto some unrelated
   behaviour difference and produce a repro that fails on a healthy
   compiler. *)
let keep_predicate ?mutate () ast =
  let subject = Oracle.Minic_src (Pp.program ast) in
  match mutate with
  | None -> Oracle.diverges subject
  | Some m -> (
    Oracle.diverges ~mutate:m subject
    && match Oracle.run subject with Oracle.Agree _ -> true | _ -> false)

let campaign ?mutate ?(max_repros = 5) ?(minimize_budget = 800) ~seed ~count ()
    =
  let minic = ref 0 and ir = ref 0 and stages = ref 0 and invalid = ref 0 in
  let findings = ref [] in
  let minimized = ref 0 in
  for s = seed to seed + count - 1 do
    let kind, subject = subject_of_seed s in
    (match kind with `Minic -> incr minic | `Ir -> incr ir);
    match Oracle.run ?mutate subject with
    | Oracle.Agree n -> stages := !stages + n
    | Oracle.Invalid _ -> incr invalid
    | Oracle.Diverged ds ->
      let source =
        match subject with Oracle.Minic_src s | Oracle.Ir_src s -> s
      in
      let minimized_src, tests =
        match kind with
        | `Ir -> (None, 0)
        | `Minic ->
          if !minimized >= max_repros then (None, 0)
          else begin
            incr minimized;
            let ast = Minic.Parser.parse_program source in
            let small, tests =
              Minimize.minimize
                ~keep:(keep_predicate ?mutate ())
                ~max_tests:minimize_budget ast
            in
            (Some (Pp.program small), tests)
          end
      in
      findings :=
        {
          f_seed = s;
          f_kind = kind;
          f_divergences = ds;
          f_source = source;
          f_minimized = minimized_src;
          f_minimize_tests = tests;
        }
        :: !findings
  done;
  {
    s_programs = count;
    s_minic = !minic;
    s_ir = !ir;
    s_stages = !stages;
    s_invalid = !invalid;
    s_findings = List.rev !findings;
  }

let render_summary ?mutate s =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  (match mutate with
  | Some m -> add "fuzz (planted bug: %s): " (Mutate.name m)
  | None -> add "fuzz: ");
  add "%d programs (%d MiniC, %d IR), %d stage comparisons, %d divergent\n"
    s.s_programs s.s_minic s.s_ir s.s_stages
    (List.length s.s_findings);
  if s.s_invalid > 0 then
    add "WARNING: %d invalid programs (generator artifacts)\n" s.s_invalid;
  List.iter
    (fun f ->
      add "\nseed %d (%s):\n" f.f_seed
        (match f.f_kind with `Minic -> "MiniC" | `Ir -> "IR");
      List.iter
        (fun (d : Oracle.divergence) ->
          add "  stage %-10s expected %s\n  %-16s      got %s\n" d.Oracle.d_stage
            d.Oracle.d_expected "" d.Oracle.d_got)
        f.f_divergences;
      match f.f_minimized with
      | Some src ->
        add "  minimized to %d lines (%d predicate tests):\n" (Pp.line_count src)
          f.f_minimize_tests;
        String.split_on_char '\n' src
        |> List.iter (fun l -> if l <> "" then add "    %s\n" l)
      | None -> ())
    s.s_findings;
  Buffer.contents buf

let write_corpus ~dir s =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.map
    (fun f ->
      let ext = match f.f_kind with `Minic -> "c" | `Ir -> "ll" in
      let path = Filename.concat dir (Printf.sprintf "seed-%04d.%s" f.f_seed ext) in
      let content = Option.value ~default:f.f_source f.f_minimized in
      Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc content);
      path)
    s.s_findings

let check_corpus_file path =
  let text = In_channel.with_open_text path In_channel.input_all in
  let subject =
    if Filename.check_suffix path ".ll" then Oracle.Ir_src text
    else Oracle.Minic_src text
  in
  match Oracle.run subject with
  | Oracle.Agree n -> Ok n
  | Oracle.Invalid msg -> Error ("invalid: " ^ msg)
  | Oracle.Diverged ds ->
    Error
      (String.concat "; "
         (List.map
            (fun (d : Oracle.divergence) ->
              Printf.sprintf "%s: expected %s, got %s" d.Oracle.d_stage
                d.Oracle.d_expected d.Oracle.d_got)
            ds))
