(* Random well-formed MiniC programs.  The generator is deliberately
   conservative: every construct it emits is safe by construction (see
   the .mli), so any cross-level disagreement the oracle finds is a
   compiler/interpreter bug, never a generator artifact like an
   uninitialized read or an unbounded loop. *)

open Minic.Ast
module Rng = Support.Rng

let pos = { Minic.Lexer.line = 0; col = 0 }
let e desc = { desc; pos }
let s sdesc = { sdesc; spos = pos }

let eint v = e (Eint v)
let efloat f = e (Efloat f)
let eid x = e (Eident x)
let ebin op a b = e (Ebinop (op, a, b))
let ecall f args = e (Ecall (f, args))

(* --- generator state --- *)

type var = {
  vname : string;
  vty : cty;
  vlen : int option;  (* Some n: array of length n (a power of two) *)
  vmut : bool;  (* loop indices and fuel counters are read-only *)
}

type helper = { hname : string; hret : cty; hparams : cty list }

type ctx = {
  rng : Rng.t;
  mutable fresh : int;
  mutable helpers : helper list;  (* earliest first; callees precede callers *)
}

let fresh ctx prefix =
  let n = ctx.fresh in
  ctx.fresh <- n + 1;
  Printf.sprintf "%s%d" prefix n

let pick ctx arr = arr.(Rng.int ctx.rng (Array.length arr))
let chance ctx pct = Rng.int ctx.rng 100 < pct

let scalars env ty =
  List.filter (fun v -> v.vlen = None && cty_equal v.vty ty) env

let mutables env ty =
  List.filter (fun v -> v.vmut && v.vlen = None && cty_equal v.vty ty) env

let arrays env ty =
  List.filter (fun v -> v.vlen <> None && cty_equal v.vty ty) env

let pick_var ctx vars = List.nth vars (Rng.int ctx.rng (List.length vars))

(* --- expressions --- *)

let int_literal ctx =
  let interesting = [| 0; 1; 2; 3; 7; 8; 10; 15; 100; 255; 1024; 65535 |] in
  if chance ctx 50 then eint (Rng.int ctx.rng 64)
  else if chance ctx 25 then eint (- Rng.int ctx.rng 64)
  else eint (pick ctx interesting * if chance ctx 20 then -1 else 1)

(* Dyadic rationals: exactly representable, so folding can't round. *)
let dbl_literal ctx = efloat (float_of_int (Rng.int ctx.rng 129 - 64) /. 16.0)

let char_literal ctx =
  e (Echar (Char.chr (32 + Rng.int ctx.rng 95)))

(* Subscripts are always masked to the power-of-two length. *)
let index_of v idx_expr =
  let len = Option.get v.vlen in
  e (Eindex (eid v.vname, ebin Band idx_expr (eint (len - 1))))

let rec int_expr ctx env depth =
  let leaf () =
    let vars = scalars env Cint in
    let choices =
      (if vars <> [] then [ `Var ] else [])
      @ (if arrays env Cint <> [] && depth > 0 then [ `Arr ] else [])
      @ [ `Lit; `Lit ]
    in
    match pick ctx (Array.of_list choices) with
    | `Var -> eid (pick_var ctx vars).vname
    | `Arr ->
      let v = pick_var ctx (arrays env Cint) in
      index_of v (int_expr ctx env 0)
    | `Lit -> int_literal ctx
  in
  if depth <= 0 then leaf ()
  else
    let sub () = int_expr ctx env (depth - 1) in
    match Rng.int ctx.rng 100 with
    | n when n < 20 -> leaf ()
    | n when n < 45 ->
      ebin (pick ctx [| Badd; Bsub; Bmul; Band; Bor; Bxor |]) (sub ()) (sub ())
    | n when n < 55 ->
      (* guarded division: the divisor is always in [1, 16] *)
      let div = ebin Badd (ebin Band (sub ()) (eint 15)) (eint 1) in
      ebin (if chance ctx 50 then Bdiv else Bmod) (sub ()) div
    | n when n < 62 ->
      ebin (if chance ctx 50 then Bshl else Bshr) (sub ()) (eint (Rng.int ctx.rng 8))
    | n when n < 70 ->
      e (Eunop (pick ctx [| Uneg; Ubnot; Unot |], sub ()))
    | n when n < 80 ->
      ebin (pick ctx [| Blt; Ble; Bgt; Bge; Beq; Bne |]) (sub ()) (sub ())
    | n when n < 86 ->
      ebin (if chance ctx 50 then Bland else Blor) (sub ()) (sub ())
    | n when n < 92 -> e (Ecast (Cint, dbl_expr ctx env (depth - 1)))
    | _ -> (
      let hs = List.filter (fun h -> cty_equal h.hret Cint) ctx.helpers in
      match hs with
      | [] -> leaf ()
      | hs ->
        let h = List.nth hs (Rng.int ctx.rng (List.length hs)) in
        ecall h.hname (List.map (fun ty -> arg_expr ctx env (depth - 1) ty) h.hparams))

and dbl_expr ctx env depth =
  let leaf () =
    let vars = scalars env Cdouble in
    if vars <> [] && chance ctx 50 then eid (pick_var ctx vars).vname
    else dbl_literal ctx
  in
  if depth <= 0 then leaf ()
  else
    let sub () = dbl_expr ctx env (depth - 1) in
    match Rng.int ctx.rng 100 with
    | n when n < 25 -> leaf ()
    | n when n < 55 ->
      ebin (pick ctx [| Badd; Bsub; Bmul |]) (sub ()) (sub ())
    | n when n < 63 ->
      (* guarded: |divisor| >= 1 *)
      ebin Bdiv (sub ()) (ebin Badd (ecall "fabs" [ sub () ]) (efloat 1.0))
    | n when n < 72 -> ecall "sqrt" [ ecall "fabs" [ sub () ] ]
    | n when n < 80 -> ecall "fabs" [ sub () ]
    | n when n < 95 -> e (Ecast (Cdouble, int_expr ctx env (depth - 1)))
    | _ -> (
      let hs = List.filter (fun h -> cty_equal h.hret Cdouble) ctx.helpers in
      match hs with
      | [] -> leaf ()
      | hs ->
        let h = List.nth hs (Rng.int ctx.rng (List.length hs)) in
        ecall h.hname (List.map (fun ty -> arg_expr ctx env (depth - 1) ty) h.hparams))

and arg_expr ctx env depth ty =
  match ty with
  | Cdouble -> dbl_expr ctx env depth
  | _ -> int_expr ctx env depth

let char_expr ctx env =
  let vars = scalars env Cchar in
  if vars <> [] && chance ctx 60 then eid (pick_var ctx vars).vname
  else if chance ctx 50 then char_literal ctx
  else
    (* printable by construction: 32 + (e & 63) is in [32, 95] *)
    e (Ecast (Cchar, ebin Badd (ebin Band (int_expr ctx env 1) (eint 63)) (eint 32)))

let cond_expr ctx env depth =
  if scalars env Cdouble <> [] && chance ctx 25 then
    ebin
      (pick ctx [| Blt; Ble; Bgt; Bge |])
      (dbl_expr ctx env depth) (dbl_expr ctx env depth)
  else
    ebin
      (pick ctx [| Blt; Ble; Bgt; Bge; Beq; Bne |])
      (int_expr ctx env depth) (int_expr ctx env depth)

(* --- statements ---

   [gen_block] threads the environment through declarations so later
   statements can use earlier variables; it returns the statements in
   order.  [budget] counts statements at this nesting level. *)

let acc_update ctx env =
  let mix = int_expr ctx env 2 in
  s
    (Sassign
       ( eid "acc",
         ebin Bxor
           (ebin Badd (ebin Bmul (eid "acc") (eint 31)) mix)
           (ebin Bshr (eid "acc") (eint 3)) ))

let print_stmt ctx env =
  let call =
    if scalars env Cdouble <> [] && chance ctx 25 then
      ecall "print_double" [ dbl_expr ctx env 2 ]
    else if scalars env Cchar <> [] && chance ctx 20 then
      ecall "print_char" [ char_expr ctx env ]
    else ecall "print_int" [ int_expr ctx env 2 ]
  in
  [ s (Sexpr call); s (Sexpr (ecall "print_newline" [])) ]

let rec gen_stmts ctx env ~budget ~depth ~loops =
  if budget <= 0 then []
  else
    let stmts, env' = gen_stmt ctx env ~depth ~loops in
    stmts @ gen_stmts ctx env' ~budget:(budget - 1) ~depth ~loops

and gen_stmt ctx env ~depth ~loops =
  let roll = Rng.int ctx.rng 100 in
  match roll with
  | n when n < 18 ->
    (* scalar declaration *)
    let ty = pick ctx [| Cint; Cint; Cint; Cdouble; Cchar |] in
    let name = fresh ctx "v" in
    let init =
      match ty with
      | Cdouble -> dbl_expr ctx env 2
      | Cchar -> char_expr ctx env
      | _ -> int_expr ctx env 2
    in
    ( [ s (Sdecl (ty, name, None, Some init)) ],
      { vname = name; vty = ty; vlen = None; vmut = true } :: env )
  | n when n < 24 && depth > 0 ->
    (* array declaration + initialization loop *)
    let len = pick ctx [| 4; 8; 16 |] in
    let ty = if chance ctx 75 then Cint else Cdouble in
    let name = fresh ctx "a" in
    let i = fresh ctx "i" in
    let fill =
      match ty with
      | Cdouble -> ebin Bmul (e (Ecast (Cdouble, eid i))) (dbl_literal ctx)
      | _ -> ebin Bxor (ebin Bmul (eid i) (int_literal ctx)) (int_literal ctx)
    in
    let v = { vname = name; vty = ty; vlen = Some len; vmut = true } in
    ( [
        s (Sdecl (ty, name, Some len, None));
        s
          (Sfor
             ( Some (s (Sdecl (Cint, i, None, Some (eint 0)))),
               Some (ebin Blt (eid i) (eint len)),
               Some (s (Sassign (eid i, ebin Badd (eid i) (eint 1)))),
               [ s (Sassign (e (Eindex (eid name, eid i)), fill)) ] ));
      ],
      v :: env )
  | n when n < 40 ->
    (* assignment to a mutable scalar *)
    let ty = pick ctx [| Cint; Cint; Cdouble |] in
    (match mutables env ty with
    | [] -> ([ acc_update ctx env ], env)
    | vars ->
      let v = pick_var ctx vars in
      let rhs =
        match ty with
        | Cdouble -> dbl_expr ctx env 2
        | _ -> int_expr ctx env 2
      in
      ([ s (Sassign (eid v.vname, rhs)) ], env))
  | n when n < 48 -> (
    (* array element store *)
    match arrays env Cint @ arrays env Cdouble with
    | [] -> ([ acc_update ctx env ], env)
    | arrs ->
      let v = pick_var ctx arrs in
      let lhs = index_of v (int_expr ctx env 1) in
      let rhs =
        if cty_equal v.vty Cdouble then dbl_expr ctx env 2
        else int_expr ctx env 2
      in
      ([ s (Sassign (lhs, rhs)) ], env))
  | n when n < 62 && depth > 0 ->
    (* if/else *)
    let c = cond_expr ctx env 2 in
    let then_ =
      gen_stmts ctx env ~budget:(1 + Rng.int ctx.rng 3) ~depth:(depth - 1) ~loops
    in
    let else_ =
      if chance ctx 50 then
        gen_stmts ctx env ~budget:(1 + Rng.int ctx.rng 2) ~depth:(depth - 1)
          ~loops
      else []
    in
    ([ s (Sif (c, then_, else_)) ], env)
  | n when n < 74 && depth > 0 && loops > 0 ->
    (* bounded for: fresh read-only index, constant trip count *)
    let i = fresh ctx "i" in
    let trips = 1 + Rng.int ctx.rng 8 in
    let env_in = { vname = i; vty = Cint; vlen = None; vmut = false } :: env in
    let body =
      gen_stmts ctx env_in ~budget:(1 + Rng.int ctx.rng 3) ~depth:(depth - 1)
        ~loops:(loops - 1)
    in
    ( [
        s
          (Sfor
             ( Some (s (Sdecl (Cint, i, None, Some (eint 0)))),
               Some (ebin Blt (eid i) (eint trips)),
               Some (s (Sassign (eid i, ebin Badd (eid i) (eint 1)))),
               body ));
      ],
      env )
  | n when n < 80 && depth > 0 && loops > 0 ->
    (* fueled while: terminates whatever the data condition does *)
    let fuel = fresh ctx "f" in
    let units = 2 + Rng.int ctx.rng 7 in
    let env_in =
      { vname = fuel; vty = Cint; vlen = None; vmut = false } :: env
    in
    let body =
      gen_stmts ctx env_in ~budget:(1 + Rng.int ctx.rng 3) ~depth:(depth - 1)
        ~loops:(loops - 1)
    in
    let c = ebin Bland (ebin Bgt (eid fuel) (eint 0)) (cond_expr ctx env_in 1) in
    ( [
        s (Sdecl (Cint, fuel, None, Some (eint units)));
        s
          (Swhile
             (c, s (Sassign (eid fuel, ebin Bsub (eid fuel) (eint 1))) :: body));
      ],
      env )
  | n when n < 88 -> (print_stmt ctx env, env)
  | _ -> ([ acc_update ctx env ], env)

(* --- top level --- *)

let gen_helper ctx idx =
  let ret = if chance ctx 70 then Cint else Cdouble in
  let nparams = 1 + Rng.int ctx.rng 3 in
  let params =
    List.init nparams (fun _ -> if chance ctx 70 then Cint else Cdouble)
  in
  let name = Printf.sprintf "h%d" idx in
  let pvars =
    List.mapi
      (fun i ty ->
        { vname = Printf.sprintf "p%d" i; vty = ty; vlen = None; vmut = true })
      params
  in
  let body =
    gen_stmts ctx pvars ~budget:(2 + Rng.int ctx.rng 4) ~depth:2 ~loops:1
  in
  let env = pvars in
  let ret_expr =
    match ret with
    | Cdouble -> dbl_expr ctx env 2
    | _ -> int_expr ctx env 2
  in
  let top =
    Tfunc
      ( ret,
        name,
        List.mapi (fun i ty -> (ty, Printf.sprintf "p%d" i)) params,
        body @ [ s (Sreturn (Some ret_expr)) ] )
  in
  ctx.helpers <- ctx.helpers @ [ { hname = name; hret = ret; hparams = params } ];
  top

let generate ~seed ?(size = 14) () =
  let ctx = { rng = Rng.of_int seed; fresh = 0; helpers = [] } in
  let globals =
    let gs = ref [ Tglobal (Cint, "acc", None, Some (Ginit_scalar (eint 0))) ] in
    let genv = ref [ { vname = "acc"; vty = Cint; vlen = None; vmut = true } ] in
    if chance ctx 60 then begin
      gs := Tglobal (Cint, "g0", None, Some (Ginit_scalar (int_literal ctx))) :: !gs;
      genv := { vname = "g0"; vty = Cint; vlen = None; vmut = true } :: !genv
    end;
    if chance ctx 40 then begin
      gs := Tglobal (Cdouble, "g1", None, Some (Ginit_scalar (dbl_literal ctx))) :: !gs;
      genv := { vname = "g1"; vty = Cdouble; vlen = None; vmut = true } :: !genv
    end;
    if chance ctx 35 then begin
      let len = pick ctx [| 4; 8 |] in
      let init =
        if chance ctx 50 then None
        else
          Some
            (Ginit_list (List.init len (fun _ -> int_literal ctx)))
      in
      gs := Tglobal (Cint, "ga", Some len, init) :: !gs;
      genv := { vname = "ga"; vty = Cint; vlen = Some len; vmut = true } :: !genv
    end;
    (List.rev !gs, !genv)
  in
  let gtops, genv = globals in
  let helpers = List.init (Rng.int ctx.rng 4) (fun i -> gen_helper ctx i) in
  let main_body =
    gen_stmts ctx genv ~budget:size ~depth:3 ~loops:2
    @ [
        s (Sexpr (ecall "print_int" [ eid "acc" ]));
        s (Sexpr (ecall "print_newline" []));
        s (Sreturn (Some (eint 0)));
      ]
  in
  gtops @ helpers @ [ Tfunc (Cint, "main", [], main_body) ]

let source ~seed ?size () = Pp.program (generate ~seed ?size ())
