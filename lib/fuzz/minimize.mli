(** Greedy test-case minimization for MiniC subjects.

    Classic delta-debugging flavour: enumerate single-step shrinks of
    the AST (drop a top-level item, delete a statement at any depth,
    replace a conditional/loop by its body, replace an expression by a
    subexpression or a small literal, halve an integer constant), keep
    the first shrink the predicate still accepts, restart.  Candidates
    that fail to compile are rejected by the predicate naturally, so
    the shrinks don't need to be type-aware.

    [keep] is typically {!Oracle.diverges} composed with {!Pp.program}
    — "the divergence is still there". *)

val variants : Minic.Ast.program -> Minic.Ast.program list
(** All single-step shrinks, most aggressive first. *)

val minimize :
  keep:(Minic.Ast.program -> bool) ->
  ?max_tests:int ->
  Minic.Ast.program ->
  Minic.Ast.program * int
(** Greedy fixpoint; returns the shrunk program and the number of
    predicate evaluations spent.  [max_tests] (default 800) bounds the
    total predicate budget so minimization stays interactive even on
    stubborn inputs. *)
