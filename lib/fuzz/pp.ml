(* MiniC AST -> source text.  Everything the generator and minimizer can
   build must survive a parse round-trip, so the printer leans on the
   lexer's exact literal grammar: floats always carry a [digits.digits]
   mantissa (the lexer requires a digit on both sides of the dot), chars
   use only the lexer's escape set, and negative literals are spelled as
   arithmetic (the lexer has no signed literals outside global
   initializers). *)

open Minic.Ast

let rec float_lit f =
  if Float.is_nan f then "(0.0 / 0.0)"
  else if f = Float.infinity then "(1.0 / 0.0)"
  else if f = Float.neg_infinity then "(0.0 - (1.0 / 0.0))"
  else if f < 0.0 || (f = 0.0 && 1.0 /. f < 0.0) then
    Printf.sprintf "(0.0 - %s)" (float_lit (-.f))
  else begin
    let s = Printf.sprintf "%.17g" f in
    (* "%.17g" may print "1e+30" or "42"; the lexer needs d.d[e..]. *)
    if String.contains s '.' then s
    else
      match String.index_opt s 'e' with
      | Some i -> String.sub s 0 i ^ ".0" ^ String.sub s i (String.length s - i)
      | None -> s ^ ".0"
  end

let char_lit c =
  let body =
    match c with
    | '\n' -> "\\n"
    | '\t' -> "\\t"
    | '\r' -> "\\r"
    | '\000' -> "\\0"
    | '\\' -> "\\\\"
    | '\'' -> "\\'"
    | c when Char.code c >= 32 && Char.code c < 127 -> String.make 1 c
    | c -> Printf.sprintf "\\%c" c (* out of the lexer's set; not generated *)
  in
  "'" ^ body ^ "'"

let string_lit s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\000' -> Buffer.add_string buf "\\0"
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let binop_token = function
  | Badd -> "+"
  | Bsub -> "-"
  | Bmul -> "*"
  | Bdiv -> "/"
  | Bmod -> "%"
  | Bshl -> "<<"
  | Bshr -> ">>"
  | Band -> "&"
  | Bor -> "|"
  | Bxor -> "^"
  | Blt -> "<"
  | Ble -> "<="
  | Bgt -> ">"
  | Bge -> ">="
  | Beq -> "=="
  | Bne -> "!="
  | Bland -> "&&"
  | Blor -> "||"

let unop_token = function Uneg -> "-" | Unot -> "!" | Ubnot -> "~"

(* Fully parenthesized; only primaries and postfix forms print bare. *)
let rec expr (e : expr) =
  match e.desc with
  | Eint v ->
    if v >= 0 then string_of_int v
    else if v = min_int then
      Printf.sprintf "((0 - %d) - 1)" max_int
    else Printf.sprintf "(0 - %d)" (-v)
  | Efloat f -> float_lit f
  | Echar c -> char_lit c
  | Eident x -> x
  | Estring s -> string_lit s
  | Ebinop (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (expr a) (binop_token op) (expr b)
  | Eunop (op, a) -> Printf.sprintf "(%s%s)" (unop_token op) (expr a)
  | Ecall (f, args) ->
    Printf.sprintf "%s(%s)" f (String.concat ", " (List.map expr args))
  | Eindex (a, i) -> Printf.sprintf "%s[%s]" (expr a) (expr i)
  | Efield (a, f) -> Printf.sprintf "%s.%s" (expr a) f
  | Earrow (a, f) -> Printf.sprintf "%s->%s" (expr a) f
  | Ederef a -> Printf.sprintf "(*%s)" (expr a)
  | Eaddr a -> Printf.sprintf "(&%s)" (expr a)
  | Ecast (ty, a) -> Printf.sprintf "((%s)%s)" (cty_to_string ty) (expr a)

let decl_string ty name len init =
  let dims = match len with Some n -> Printf.sprintf "[%d]" n | None -> "" in
  let rhs = match init with Some e -> " = " ^ expr e | None -> "" in
  Printf.sprintf "%s %s%s%s" (cty_to_string ty) name dims rhs

(* For-headers use the statement grammar without the trailing ';'. *)
let simple_stmt (s : stmt) =
  match s.sdesc with
  | Sdecl (ty, name, len, init) -> decl_string ty name len init
  | Sassign (l, r) -> Printf.sprintf "%s = %s" (expr l) (expr r)
  | Sexpr e -> expr e
  | _ -> invalid_arg "Pp.simple_stmt: not a simple statement"

let rec stmt ?(indent = 0) (s : stmt) =
  let pad = String.make indent ' ' in
  match s.sdesc with
  | Sdecl _ | Sassign _ | Sexpr _ -> pad ^ simple_stmt s ^ ";"
  | Sif (c, then_, []) ->
    Printf.sprintf "%sif (%s) {\n%s%s}" pad (expr c)
      (body ~indent then_) pad
  | Sif (c, then_, else_) ->
    Printf.sprintf "%sif (%s) {\n%s%s} else {\n%s%s}" pad (expr c)
      (body ~indent then_) pad (body ~indent else_) pad
  | Swhile (c, b) ->
    Printf.sprintf "%swhile (%s) {\n%s%s}" pad (expr c) (body ~indent b) pad
  | Sfor (init, cond, step, b) ->
    Printf.sprintf "%sfor (%s; %s; %s) {\n%s%s}" pad
      (match init with Some s -> simple_stmt s | None -> "")
      (match cond with Some e -> expr e | None -> "")
      (match step with Some s -> simple_stmt s | None -> "")
      (body ~indent b) pad
  | Sreturn None -> pad ^ "return;"
  | Sreturn (Some e) -> pad ^ "return " ^ expr e ^ ";"
  | Sbreak -> pad ^ "break;"
  | Scontinue -> pad ^ "continue;"
  | Sblock b -> Printf.sprintf "%s{\n%s%s}" pad (body ~indent b) pad

and body ~indent stmts =
  String.concat ""
    (List.map (fun s -> stmt ~indent:(indent + 2) s ^ "\n") stmts)

(* Global initializers are literal-only in the grammar (an optional
   leading minus, no parentheses), so they bypass [expr]. *)
let global_scalar (e : expr) =
  match e.desc with
  | Eint v -> string_of_int v
  | Efloat f -> if f < 0.0 then "-" ^ float_lit (-.f) else float_lit f
  | Echar c -> char_lit c
  | Eunop (Uneg, { desc = Eint v; _ }) -> "-" ^ string_of_int v
  | Eunop (Uneg, { desc = Efloat f; _ }) -> "-" ^ float_lit f
  | _ -> invalid_arg "Pp.global_scalar: global initializers must be literals"

let top (t : top) =
  match t with
  | Tstruct (name, fields) ->
    Printf.sprintf "struct %s {\n%s};" name
      (String.concat ""
         (List.map
            (fun (ty, f) -> Printf.sprintf "  %s %s;\n" (cty_to_string ty) f)
            fields))
  | Tglobal (ty, name, len, init) ->
    let dims = match len with Some n -> Printf.sprintf "[%d]" n | None -> "" in
    let rhs =
      match init with
      | None -> ""
      | Some (Ginit_scalar e) -> " = " ^ global_scalar e
      | Some (Ginit_list es) ->
        " = { " ^ String.concat ", " (List.map global_scalar es) ^ " }"
    in
    Printf.sprintf "%s %s%s%s;" (cty_to_string ty) name dims rhs
  | Tfunc (ret, name, params, b) ->
    Printf.sprintf "%s %s(%s) {\n%s}" (cty_to_string ret) name
      (String.concat ", "
         (List.map
            (fun (ty, p) -> Printf.sprintf "%s %s" (cty_to_string ty) p)
            params))
      (body ~indent:0 b)

let program (p : program) =
  String.concat "\n\n" (List.map top p) ^ "\n"

let line_count s =
  String.split_on_char '\n' s
  |> List.filter (fun l -> String.trim l <> "")
  |> List.length
