module Campaign = Core.Campaign
module Category = Core.Category

type cell = {
  cov_workload : string;
  cov_tool : Campaign.tool;
  cov_category : Category.t;
  cov_static : int;
  cov_reachable : int;
  cov_selected : int;
  cov_bit_space : int;
  cov_bits_hit : int;
  cov_population : int;
  cov_trials : int;
  cov_top_share : float;
  cov_top_expected : float;
}

type report = {
  cells : cell list;
  dead : (string * string * string) list;
  models : string list;
}

(* --- static fault-space enumeration --- *)

(* Flippable bits of an IR injection site: the width [Ir_exec.inject_int]
   / [inject_float] draws from. *)
let ir_site_bits (site : Vm.Ir_exec.site) =
  match site.Vm.Ir_exec.site_instr.Ir.Instr.result with
  | None -> 0
  | Some v ->
    let ty = v.Ir.Value.ty in
    if Ir.Types.is_float ty then 64
    else if Ir.Types.is_pointer ty then Support.Word.width
    else Ir.Types.bit_width ty

(* Flippable bits of an x86 site under the given policy: what
   [X86_exec.inject] draws from. *)
let x86_site_bits (policy : Vm.X86_exec.policy) (program : Backend.Program.t)
    index =
  match Vm.X86_exec.primary_dest program.Backend.Program.insns.(index) with
  | Vm.X86_exec.Dgp _ -> Support.Word.width
  | Vm.X86_exec.Dxmm _ -> if policy.Vm.X86_exec.xmm_low64_only then 64 else 128
  | Vm.X86_exec.Dflags ->
    let dependent =
      policy.Vm.X86_exec.flag_dependent_bits
      && index + 1 < Array.length program.Backend.Program.insns
    in
    List.length
      (match program.Backend.Program.insns.(index + 1) with
      | X86.Insn.Jcc (c, _) when dependent -> X86.Flags.dependent_bits c
      | _ -> X86.Flags.all_bits
      | exception Invalid_argument _ -> X86.Flags.all_bits)
  | Vm.X86_exec.Dnone -> 0

(* Static sites of one cell: (site id, flippable bits, dynamic count). *)
let llfi_sites (p : Campaign.prepared) category dyn =
  let cmask = Category.mask category in
  Array.to_list (Vm.Ir_exec.sites p.Campaign.llfi.Core.Llfi.compiled)
  |> List.filter_map (fun (s : Vm.Ir_exec.site) ->
         if s.Vm.Ir_exec.site_mask land cmask <> 0 then
           Some (s.Vm.Ir_exec.site_gid, ir_site_bits s, dyn s.Vm.Ir_exec.site_gid)
         else None)

let pinfi_sites (p : Campaign.prepared) category dyn =
  let cmask = Category.mask category in
  let loaded = p.Campaign.pinfi.Core.Pinfi.loaded in
  let policy = p.Campaign.pinfi.Core.Pinfi.config.Core.Pinfi.policy in
  let out = ref [] in
  Array.iteri
    (fun idx mask ->
      if mask land cmask <> 0 then
        out :=
          (idx, x86_site_bits policy loaded.Vm.X86_exec.program idx, dyn idx)
          :: !out)
    loaded.Vm.X86_exec.masks;
  List.rev !out

(* Per-site dynamic execution counts from one profiling run. *)
let llfi_dyn (p : Campaign.prepared) =
  let compiled = p.Campaign.llfi.Core.Llfi.compiled in
  let counts = Array.make (Vm.Ir_exec.gid_limit compiled) 0 in
  ignore
    (Vm.Ir_exec.run
       ~inputs:p.Campaign.llfi.Core.Llfi.inputs
       ~profile_sites:counts compiled);
  fun gid -> counts.(gid)

let pinfi_dyn (p : Campaign.prepared) =
  let loaded = p.Campaign.pinfi.Core.Pinfi.loaded in
  let counts = Array.make (Array.length loaded.Vm.X86_exec.masks) 0 in
  ignore
    (Vm.X86_exec.run
       ~inputs:p.Campaign.pinfi.Core.Pinfi.inputs
       ~profile_index:counts loaded);
  fun idx -> counts.(idx)

(* --- trial sampling --- *)

(* "bit 17 of i64 result" / "bit 3 of rax" / "flag bit 6" -> bit id *)
let bit_of_note note =
  let num_at i =
    let j = ref i in
    let n = String.length note in
    while !j < n && note.[!j] >= '0' && note.[!j] <= '9' do
      incr j
    done;
    if !j = i then None else Some (int_of_string (String.sub note i (!j - i)))
  in
  if String.length note >= 9 && String.sub note 0 9 = "flag bit " then num_at 9
  else if String.length note >= 4 && String.sub note 0 4 = "bit " then num_at 4
  else None

(* Bits are tracked as (site, bit, model-name) triples: the model axis
   multiplies the fault space exactly as it multiplies a campaign
   grid. *)
type tally = {
  site_hits : (int, int) Hashtbl.t;
  bits : (int * int * string, unit) Hashtbl.t;
  mutable observed : int;
}

(* Per-model per-site fault-space size: bit-drawing models span the
   site's flippable width; Skip and Load_value have one fault per
   site. *)
let model_site_space (model : Core.Fault_model.t) bits =
  if bits = 0 then 0
  else
    match model with
    | Core.Fault_model.Skip | Core.Fault_model.Load_value -> 1
    | Core.Fault_model.Bitflip | Core.Fault_model.Multi_bit _
    | Core.Fault_model.Stuck_at_0 | Core.Fault_model.Stuck_at_1 -> bits

let measure ?(jobs = 1) ?(workloads = Workloads.all)
    ?(models = [ Core.Fault_model.Bitflip ]) ~trials ~seed () =
  let models =
    match models with [] -> [ Core.Fault_model.Bitflip ] | l -> l
  in
  let mutex = Mutex.create () in
  let tallies : (string * string * string, tally) Hashtbl.t =
    Hashtbl.create 64
  in
  let run_one model =
    let config = { Campaign.default_config with trials; seed; model } in
    let mname = Core.Fault_model.name model in
    (* Skip and Load_value notes carry no bit position: the whole site
       is their one fault, recorded as bit 0. *)
    let bitless =
      match model with
      | Core.Fault_model.Skip | Core.Fault_model.Load_value -> true
      | _ -> false
    in
    let observe ~workload ~tool ~category ~trial:_ _verdict
        (stats : Vm.Outcome.stats) =
      Mutex.lock mutex;
      let key = (workload, Campaign.tool_name tool, Category.name category) in
      let t =
        match Hashtbl.find_opt tallies key with
        | Some t -> t
        | None ->
          let t =
            {
              site_hits = Hashtbl.create 64;
              bits = Hashtbl.create 256;
              observed = 0;
            }
          in
          Hashtbl.add tallies key t;
          t
      in
      t.observed <- t.observed + 1;
      let site = stats.Vm.Outcome.fault_site in
      if site >= 0 then begin
        Hashtbl.replace t.site_hits site
          (1 + Option.value ~default:0 (Hashtbl.find_opt t.site_hits site));
        match bit_of_note stats.Vm.Outcome.fault_note with
        | Some bit -> Hashtbl.replace t.bits (site, bit, mname) ()
        | None -> if bitless then Hashtbl.replace t.bits (site, 0, mname) ()
      end;
      Mutex.unlock mutex
    in
    Engine.Scheduler.run ~jobs ~observe config workloads
  in
  let result =
    match List.map run_one models with
    | first :: _ -> first
    | [] -> assert false
  in
  let cells = ref [] in
  let dead = ref [] in
  List.iter
    (fun (p : Campaign.prepared) ->
      let llfi_dyn = llfi_dyn p in
      let pinfi_dyn = pinfi_dyn p in
      List.iter
        (fun tool ->
          List.iter
            (fun category ->
              let wname = p.Campaign.workload.Core.Workload.name in
              let population =
                match tool with
                | Campaign.Llfi_tool ->
                  Core.Llfi.dynamic_count p.Campaign.llfi category
                | Campaign.Pinfi_tool ->
                  Core.Pinfi.dynamic_count p.Campaign.pinfi category
              in
              let sites =
                match tool with
                | Campaign.Llfi_tool -> llfi_sites p category llfi_dyn
                | Campaign.Pinfi_tool -> pinfi_sites p category pinfi_dyn
              in
              if population = 0 then
                dead :=
                  (wname, Campaign.tool_name tool, Category.name category)
                  :: !dead
              else begin
                let key =
                  (wname, Campaign.tool_name tool, Category.name category)
                in
                let t =
                  match Hashtbl.find_opt tallies key with
                  | Some t -> t
                  | None ->
                    {
                      site_hits = Hashtbl.create 1;
                      bits = Hashtbl.create 1;
                      observed = 0;
                    }
                in
                let reachable =
                  List.filter (fun (_, _, d) -> d > 0) sites
                in
                let top_site, top_hits =
                  Hashtbl.fold
                    (fun site n (bs, bn) ->
                      if n > bn || (n = bn && site < bs) then (site, n)
                      else (bs, bn))
                    t.site_hits (-1, 0)
                in
                let top_expected =
                  if top_site < 0 then 0.0
                  else
                    match
                      List.find_opt (fun (s, _, _) -> s = top_site) sites
                    with
                    | Some (_, _, d) -> float_of_int d /. float_of_int population
                    | None -> 0.0
                in
                cells :=
                  {
                    cov_workload = wname;
                    cov_tool = tool;
                    cov_category = category;
                    cov_static = List.length sites;
                    cov_reachable = List.length reachable;
                    cov_selected = Hashtbl.length t.site_hits;
                    cov_bit_space =
                      List.fold_left
                        (fun a (_, b, _) ->
                          a
                          + List.fold_left
                              (fun acc m -> acc + model_site_space m b)
                              0 models)
                        0 reachable;
                    cov_bits_hit = Hashtbl.length t.bits;
                    cov_population = population;
                    cov_trials = t.observed;
                    cov_top_share =
                      (if t.observed = 0 then 0.0
                       else float_of_int top_hits /. float_of_int t.observed);
                    cov_top_expected = top_expected;
                  }
                  :: !cells
              end)
            Category.all)
        [ Campaign.Llfi_tool; Campaign.Pinfi_tool ])
    result.Engine.Scheduler.prepared;
  {
    cells = List.rev !cells;
    dead = List.rev !dead;
    models = List.map Core.Fault_model.name models;
  }

let pct a b = if b = 0 then 0.0 else 100.0 *. float_of_int a /. float_of_int b

let render report =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "Injection-space coverage (static sites the samplers can reach vs what \
     the trials visited)\n\n";
  if report.models <> [ "bitflip" ] then
    Buffer.add_string buf
      (Printf.sprintf
         "fault models: %s (bit-space and bits-hit count (site, bit, model) \
          triples)\n\n"
         (String.concat ", " report.models));
  Buffer.add_string buf
    (Printf.sprintf "%-12s %-6s %-11s %7s %6s %5s %9s %10s %9s %8s %15s\n"
       "workload" "tool" "category" "static" "reach" "sel" "site-cov" "bit-space"
       "bits-hit" "bit-cov" "top obs/exp");
  List.iter
    (fun c ->
      Buffer.add_string buf
        (Printf.sprintf
           "%-12s %-6s %-11s %7d %6d %5d %8.1f%% %10d %9d %7.1f%% %7.3f/%.3f\n"
           c.cov_workload
           (Campaign.tool_name c.cov_tool)
           (Category.name c.cov_category)
           c.cov_static c.cov_reachable c.cov_selected
           (pct c.cov_selected c.cov_reachable)
           c.cov_bit_space c.cov_bits_hit
           (pct c.cov_bits_hit c.cov_bit_space)
           c.cov_top_share c.cov_top_expected))
    report.cells;
  if report.dead <> [] then begin
    Buffer.add_string buf "\ndead cells (no dynamic instances, never injectable):\n";
    List.iter
      (fun (w, t, c) ->
        Buffer.add_string buf (Printf.sprintf "  %s/%s/%s\n" w t c))
      report.dead
  end;
  Buffer.contents buf
