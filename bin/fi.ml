(* fi — command-line driver for the LLFI/PINFI fault-injection study.

   Subcommands:
     list       benchmark registry (Table II data)
     run        golden-run a benchmark at either level
     emit       dump the optimized IR or the generated assembly
     profile    dynamic instruction counts per category (Table IV row)
     inject     run one fault-injection cell and print its tally
     propagate  trace fault propagation through the instruction stream
     edc        grade SDC severity (egregious vs tolerable corruption)
     check      parse/verify/execute a textual IR dump
     campaign   run the full study and print every table and figure
     diagnose   crash-cause analysis: first-use classes, crash latency,
                LLFI-vs-PINFI divergence attribution
     exhaust    exhaustive + pruned fault-space campaign: exact outcome
                rates with a measured pruning ratio
*)

open Cmdliner

let workload_conv =
  let parse s =
    match Workloads.find s with
    | Some w -> Ok w
    | None ->
      Error
        (`Msg
          (Printf.sprintf "unknown workload %S (try: %s)" s
             (String.concat ", "
                (List.map (fun w -> w.Core.Workload.name) Workloads.all))))
  in
  let print fmt (w : Core.Workload.t) = Format.fprintf fmt "%s" w.name in
  Arg.conv (parse, print)

let category_conv =
  let parse s =
    match Core.Category.of_string s with
    | Some c -> Ok c
    | None -> Error (`Msg (Printf.sprintf "unknown category %S" s))
  in
  let print fmt c = Format.fprintf fmt "%s" (Core.Category.name c) in
  Arg.conv (parse, print)

let model_conv =
  let parse s =
    match Core.Fault_model.of_name s with
    | Some m -> Ok m
    | None ->
      Error
        (`Msg
          (Printf.sprintf
             "unknown fault model %S (try: bitflip, multi_bit:N, stuck_at_0, \
              stuck_at_1, skip, load_value)"
             s))
  in
  let print fmt m = Format.fprintf fmt "%s" (Core.Fault_model.name m) in
  Arg.conv (parse, print)

let model_arg =
  Arg.(
    value
    & opt model_conv Core.Fault_model.Bitflip
    & info [ "model" ] ~docv:"MODEL"
        ~doc:
          "Fault model applied at each planned injection target: \
           $(b,bitflip) (the default, the paper's model), $(b,multi_bit:N) \
           (N bit flips drawn with replacement), $(b,stuck_at_0) / \
           $(b,stuck_at_1) (force one drawn bit), $(b,skip) (suppress the \
           targeted instruction's destination write), or $(b,load_value) \
           (replace the whole destination value).  Results are \
           deterministic per model and byte-identical for every \
           $(b,--jobs) value.")

let workload_opt_arg =
  Arg.(
    value
    & opt (some workload_conv) None
    & info [ "w"; "workload" ] ~docv:"NAME" ~doc:"Registered benchmark to use.")

let file_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "f"; "file" ] ~docv:"PATH"
        ~doc:"A MiniC source file to study instead of a registered benchmark.")

let inputs_arg =
  Arg.(
    value
    & opt (list int) []
    & info [ "inputs" ] ~docv:"N,N,..."
        ~doc:"Input vector served by the program's input() builtin.")

let workload_of_file path inputs =
  let source = In_channel.with_open_text path In_channel.input_all in
  {
    Core.Workload.name = Filename.remove_extension (Filename.basename path);
    suite = "user";
    description = "user-supplied program " ^ path;
    paper_counterpart = "(none)";
    source;
    inputs = Array.of_list inputs;
    input_name = "custom";
  }

(* Either a registered benchmark (-w) or a source file (--file), with an
   optional input-vector override. *)
let workload_arg =
  let combine w file inputs =
    match (w, file) with
    | Some w, None -> (
      match inputs with
      | [] -> `Ok w
      | l -> `Ok { w with Core.Workload.inputs = Array.of_list l; input_name = "custom" })
    | None, Some path -> (
      match workload_of_file path inputs with
      | w -> `Ok w
      | exception Sys_error msg -> `Error (false, msg))
    | Some _, Some _ -> `Error (true, "use either -w or --file, not both")
    | None, None -> `Error (true, "one of -w NAME or --file PATH is required")
  in
  Term.(ret (const combine $ workload_opt_arg $ file_arg $ inputs_arg))

let seed_arg =
  Arg.(
    value & opt int 2014
    & info [ "seed" ] ~docv:"SEED" ~doc:"Campaign master seed (deterministic).")

let trials_arg default =
  Arg.(
    value & opt int default
    & info [ "n"; "trials" ] ~docv:"N"
        ~doc:"Fault injections per benchmark x tool x category cell.")

let config_of ?(no_snapshot = false) ?(no_compile = false)
    ?(model = Core.Fault_model.Bitflip) ~trials ~seed () =
  {
    Core.Campaign.default_config with
    trials;
    seed;
    model;
    snapshot = not no_snapshot;
    compile = not no_compile;
  }

(* --- execution-engine flags (campaign, inject) --- *)

let no_snapshot_arg =
  Arg.(
    value & flag
    & info [ "no-snapshot" ]
        ~doc:
          "Disable the snapshot/fast-forward executor and re-run every \
           trial from instruction 0.  Results are byte-identical either \
           way; this is the reference path, kept as an escape hatch and \
           benchmarking baseline.")

let no_compile_arg =
  Arg.(
    value & flag
    & info [ "no-compile" ]
        ~doc:
          "Disable the closure-compiled execution tier and run every \
           golden, profiling and trial execution on the tree-walking \
           interpreters.  Results are byte-identical either way; this \
           is the reference path, kept as an escape hatch and \
           benchmarking baseline.")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the execution engine.  1 (the default) runs \
           sequentially on the calling domain; 0 uses the \
           runtime-recommended domain count.  Results are byte-identical \
           for every value of $(docv).")

let journal_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "journal" ] ~docv:"PATH"
        ~doc:
          "Checkpoint file: append every completed campaign cell so an \
           interrupted run can be resumed with $(b,--resume).")

let resume_arg =
  Arg.(
    value & flag
    & info [ "resume" ]
        ~doc:
          "Resume from the $(b,--journal) file, skipping cells it already \
           contains.")

let resolve_jobs jobs = if jobs <= 0 then Engine.Pool.default_size () else jobs

let check_engine_flags ~journal ~resume =
  if resume && journal = None then
    `Error (true, "--resume requires --journal PATH")
  else `Ok ()

(* --- observability flags (campaign, inject, diagnose, fuzz) ---

   All telemetry notices and tables go to stderr: stdout must stay
   byte-identical with telemetry on or off (ci.sh smokes this). *)

type obs_opts = {
  o_trace : string option;
  o_metrics : bool;
  o_manifest : string option;
}

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"PATH"
        ~doc:
          "Record spans (scheduler tasks, fast-forward / checkpoint / \
           trial phases) and write a Chrome trace_event JSON file to \
           $(docv) — open it in chrome://tracing or Perfetto.  The span \
           tree is identical for every $(b,--jobs) value.")

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:"Print the merged metrics table to stderr when the run ends.")

let manifest_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "manifest" ] ~docv:"PATH"
        ~doc:
          "Write a run manifest (config, environment, per-section \
           wall-clock, metrics, output digests) to $(docv).  On by \
           default for $(b,campaign) (fi-manifest.json); see \
           $(b,--no-manifest).")

let no_manifest_arg =
  Arg.(
    value & flag
    & info [ "no-manifest" ] ~doc:"Do not write a run manifest.")

(* Manifests record the full invocation — the whole argument vector,
   not just the subcommand name — so a run can be replayed from its
   manifest alone. *)
let argv_command () = String.concat " " (Array.to_list Sys.argv)

(* The tracer needs spans recorded as they happen, so enabling is part
   of argument resolution; metrics piggyback on any telemetry consumer
   (the manifest embeds a metrics snapshot). *)
let obs_resolve ~manifest_default trace metrics manifest no_manifest =
  let manifest =
    if no_manifest then None
    else match manifest with Some p -> Some p | None -> manifest_default
  in
  if trace <> None then Obs.Trace.enable ();
  if trace <> None || metrics || manifest <> None then Obs.Metrics.enable ();
  { o_trace = trace; o_metrics = metrics; o_manifest = manifest }

let obs_term ~manifest_default =
  Term.(
    const (obs_resolve ~manifest_default)
    $ trace_arg $ metrics_arg $ manifest_arg $ no_manifest_arg)

let obs_finish ?manifest o =
  (match o.o_trace with
  | Some path ->
    Obs.Trace.write path;
    Fmt.epr "Trace written to %s@." path
  | None -> ());
  (match (o.o_manifest, manifest) with
  | Some path, Some m ->
    Obs.Manifest.write m ~path;
    if path <> "/dev/null" then Fmt.epr "Run manifest written to %s@." path
  | _ -> ());
  if o.o_metrics then prerr_string (Obs.Metrics.render ())

(* Manifest plumbing shared by every campaign-shaped subcommand: create
   the manifest iff --manifest resolved to a path, record the config
   key/values, and expose section timing that is a no-op without a
   manifest.  [finish] is [obs_finish] with the context's manifest. *)
type mctx = {
  mf : Obs.Manifest.t option;
  in_section : 'a. string -> (unit -> 'a) -> 'a;
}

let manifest_ctx obs kvs =
  let mf =
    Option.map
      (fun _ -> Obs.Manifest.create ~command:(argv_command ()))
      obs.o_manifest
  in
  (match mf with
  | Some m -> List.iter (fun (k, v) -> Obs.Manifest.set m k v) kvs
  | None -> ());
  {
    mf;
    in_section =
      (fun name f ->
        match mf with Some m -> Obs.Manifest.section m name f | None -> f ());
  }

let finish ctx obs = obs_finish ?manifest:ctx.mf obs

(* The CSV epilogue every results-producing command shares: digest into
   the manifest, then optionally write the file. *)
let record_csv ctx ?path ~what csv =
  (match ctx.mf with
  | Some m -> Obs.Manifest.add_digest m "csv" ~payload:csv
  | None -> ());
  match path with
  | Some p ->
    let oc = open_out p in
    output_string oc csv;
    close_out oc;
    Fmt.pr "%s written to %s@." what p
  | None -> ()

let kv_workloads workloads =
  Obs.Json.List
    (List.map (fun (w : Core.Workload.t) -> Obs.Json.Str w.name) workloads)

(* --- list --- *)

let list_cmd =
  let run () =
    Core.Report.table2 Workloads.all;
    0
  in
  Cmd.v (Cmd.info "list" ~doc:"List the benchmark programs (Table II).")
    Term.(const run $ const ())

(* --- run --- *)

let level_arg =
  Arg.(
    value
    & opt (enum [ ("ir", `Ir); ("asm", `Asm) ]) `Ir
    & info [ "level" ] ~docv:"LEVEL" ~doc:"Execution level: ir or asm.")

let run_cmd =
  let run (w : Core.Workload.t) level =
    let prog = Opt.optimize (Minic.compile w.source) in
    let stats =
      match level with
      | `Ir -> Vm.Ir_exec.run ~inputs:w.inputs (Vm.Ir_exec.compile prog)
      | `Asm ->
        Vm.X86_exec.run ~inputs:w.inputs (Vm.X86_exec.load (Backend.compile prog))
    in
    (match stats.Vm.Outcome.outcome with
    | Vm.Outcome.Finished out -> print_string out
    | other -> Fmt.pr "%a@." Vm.Outcome.pp other);
    Fmt.pr "[%d dynamic instructions]@." stats.Vm.Outcome.steps;
    0
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Golden-run a benchmark and print its output.")
    Term.(const run $ workload_arg $ level_arg)

(* --- emit --- *)

let emit_cmd =
  let run (w : Core.Workload.t) what optimized =
    let prog = Minic.compile w.source in
    let prog = if optimized then Opt.optimize prog else prog in
    (match what with
    | `Ir -> print_string (Ir.Printer.prog_to_string prog)
    | `Asm -> print_string (Backend.Program.to_string (Backend.compile prog)));
    0
  in
  let what =
    Arg.(
      value
      & opt (enum [ ("ir", `Ir); ("asm", `Asm) ]) `Ir
      & info [ "emit" ] ~docv:"WHAT" ~doc:"What to dump: ir or asm.")
  in
  let optimized =
    Arg.(
      value & opt bool true
      & info [ "optimized" ] ~docv:"BOOL"
          ~doc:"Run the standard optimization pipeline first.")
  in
  Cmd.v
    (Cmd.info "emit" ~doc:"Dump a benchmark's IR or generated assembly.")
    Term.(const run $ workload_arg $ what $ optimized)

(* --- profile --- *)

let profile_cmd =
  let run (w : Core.Workload.t) =
    let config = Core.Campaign.default_config in
    let p = Core.Campaign.prepare config w in
    Core.Report.table4 [ p ];
    0
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Profile dynamic instruction counts per category (Table IV row).")
    Term.(const run $ workload_arg)

(* --- inject --- *)

let inject_cmd =
  let run (w : Core.Workload.t) tool category model trials seed functions jobs
      journal resume no_snapshot no_compile obs =
    match check_engine_flags ~journal ~resume with
    | `Error _ as e -> e
    | `Ok () ->
    let config = config_of ~no_snapshot ~no_compile ~model ~trials ~seed () in
    let config =
      match functions with
      | [] -> config
      | names ->
        {
          config with
          llfi =
            { config.llfi with Core.Llfi.custom_selector = Core.Llfi.in_functions names };
        }
    in
    let tool =
      match tool with
      | `Llfi -> Core.Campaign.Llfi_tool
      | `Pinfi -> Core.Campaign.Pinfi_tool
    in
    let ctx =
      manifest_ctx obs
        [
          ("workload", Obs.Json.Str w.name);
          ("tool", Obs.Json.Str (Core.Campaign.tool_name tool));
          ("category", Obs.Json.Str (Core.Category.name category));
          ("model", Obs.Json.Str (Core.Fault_model.name model));
          ("seed", Obs.Json.Int seed);
          ("trials", Obs.Json.Int trials);
          ("jobs", Obs.Json.Int (resolve_jobs jobs));
          ("snapshot", Obs.Json.Bool (not no_snapshot));
          ("compile", Obs.Json.Bool (not no_compile));
        ]
    in
    (* A single cell run through the engine: with --jobs N the cell is
       split into N trial ranges; the tally is identical either way. *)
    match
      ctx.in_section "execute" @@ fun () ->
      Engine.Scheduler.run ~jobs:(resolve_jobs jobs) ?journal ~resume
        ~tools:[ tool ] ~categories:[ category ] config [ w ]
    with
    | exception Invalid_argument msg -> `Error (false, msg)
    | result ->
    let cell = List.hd result.Engine.Scheduler.cells in
    let t = cell.Core.Campaign.c_tally in
    Fmt.pr "workload=%s tool=%s category=%s population=%d@." w.name
      (Core.Campaign.tool_name tool)
      (Core.Category.name category)
      cell.c_population;
    Fmt.pr "trials=%d activated=%d@." t.Core.Verdict.trials
      (Core.Verdict.activated t);
    Fmt.pr "crash=%d (%.1f%%)  sdc=%d (%.1f%%)  benign=%d (%.1f%%)  hang=%d@."
      t.crash
      (100.0 *. Core.Verdict.crash_rate t)
      t.sdc
      (100.0 *. Core.Verdict.sdc_rate t)
      t.benign
      (100.0 *. Core.Verdict.benign_rate t)
      t.hang;
    if t.not_activated > 0 then Fmt.pr "not activated: %d@." t.not_activated;
    finish ctx obs;
    `Ok 0
  in
  let tool_arg =
    Arg.(
      value
      & opt (enum [ ("llfi", `Llfi); ("pinfi", `Pinfi) ]) `Llfi
      & info [ "t"; "tool" ] ~docv:"TOOL" ~doc:"Injector: llfi or pinfi.")
  in
  let cat_arg =
    Arg.(
      value
      & opt category_conv Core.Category.All
      & info [ "c"; "category" ] ~docv:"CAT"
          ~doc:"Instruction category: arithmetic, cast, cmp, load or all.")
  in
  let functions_arg =
    Arg.(
      value & opt_all string []
      & info [ "in-function" ] ~docv:"FUNC"
          ~doc:
            "Restrict LLFI injection to the named function(s) — LLFI's \
             custom selectors (repeatable).")
  in
  Cmd.v
    (Cmd.info "inject" ~doc:"Run one fault-injection cell and print the tally.")
    Term.(
      ret
        (const run $ workload_arg $ tool_arg $ cat_arg $ model_arg
       $ trials_arg 200 $ seed_arg $ functions_arg $ jobs_arg $ journal_arg
       $ resume_arg $ no_snapshot_arg $ no_compile_arg
       $ obs_term ~manifest_default:None))

(* --- propagate --- *)

let propagate_cmd =
  let run (w : Core.Workload.t) category trials seed =
    let prog = Opt.optimize (Minic.compile w.source) in
    let llfi = Core.Llfi.prepare ~inputs:w.inputs prog in
    let rng = Support.Rng.of_int seed in
    Fmt.pr "Error propagation for %s, %d traced injections into '%s':@."
      w.name trials
      (Core.Category.name category);
    let vanished = ref 0 in
    let data_only = ref 0 in
    let cf = ref 0 in
    for trial = 1 to trials do
      let report = Core.Propagation.analyze llfi category (Support.Rng.split rng) in
      Fmt.pr "  %2d: %a@." trial Core.Propagation.pp_report report;
      (match
         (report.Core.Propagation.first_divergence,
          report.Core.Propagation.control_flow_diverged_at)
       with
      | None, _ -> incr vanished
      | Some _, None -> incr data_only
      | Some _, Some _ -> incr cf)
    done;
    Fmt.pr "@.summary: %d vanished, %d data-flow only, %d reached control flow@."
      !vanished !data_only !cf;
    0
  in
  let cat_arg =
    Arg.(
      value
      & opt category_conv Core.Category.All
      & info [ "c"; "category" ] ~docv:"CAT" ~doc:"Instruction category.")
  in
  Cmd.v
    (Cmd.info "propagate"
       ~doc:
         "Trace how injected faults propagate through the dynamic \
          instruction stream (LLFI's propagation analysis).")
    Term.(const run $ workload_arg $ cat_arg $ trials_arg 10 $ seed_arg)

(* --- check: parse/verify/run a textual IR dump --- *)

let check_cmd =
  let run path inputs execute =
    let text = In_channel.with_open_text path In_channel.input_all in
    match Ir.Parse.prog text with
    | exception Ir.Parse.Error msg ->
      Fmt.epr "parse error: %s@." msg;
      1
    | prog -> (
      match Ir.Verify.check_prog prog with
      | _ :: _ as errors ->
        List.iter (fun e -> Fmt.epr "%a@." Ir.Verify.pp_error e) errors;
        Fmt.epr "%d verification error(s)@." (List.length errors);
        1
      | [] ->
        Fmt.pr "%s: %d function(s), %d global(s) — OK@." path
          (List.length prog.Ir.Prog.funcs)
          (List.length prog.Ir.Prog.globals);
        if execute then begin
          let stats =
            Vm.Ir_exec.run
              ~inputs:(Array.of_list inputs)
              (Vm.Ir_exec.compile prog)
          in
          match stats.Vm.Outcome.outcome with
          | Vm.Outcome.Finished out ->
            print_string out;
            Fmt.pr "[%d dynamic instructions]@." stats.Vm.Outcome.steps
          | other -> Fmt.pr "%a@." Vm.Outcome.pp other
        end;
        0)
  in
  let path_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE.ll" ~doc:"Textual IR dump (from 'fi emit').")
  in
  let exec_arg =
    Arg.(
      value & flag
      & info [ "exec" ] ~doc:"Also execute the parsed program's main.")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Parse and verify a textual IR dump; optionally execute it.")
    Term.(const run $ path_arg $ inputs_arg $ exec_arg)

(* --- edc --- *)

let edc_cmd =
  let run (w : Core.Workload.t) category trials seed threshold =
    let prog = Opt.optimize (Minic.compile w.source) in
    let llfi = Core.Llfi.prepare ~inputs:w.inputs prog in
    let study =
      Core.Edc.run_study ~threshold llfi category ~trials
        (Support.Rng.of_int seed)
    in
    Fmt.pr "workload=%s category=%s trials=%d threshold=%.0f%%@." w.name
      (Core.Category.name category)
      trials (100.0 *. threshold);
    Fmt.pr "sdc=%d  egregious=%d  tolerable=%d  (worst tolerated deviation %.3f%%)@."
      study.Core.Edc.s_sdc study.s_egregious study.s_tolerable
      (100.0 *. study.s_max_tolerated);
    0
  in
  let cat_arg =
    Arg.(
      value
      & opt category_conv Core.Category.All
      & info [ "c"; "category" ] ~docv:"CAT" ~doc:"Instruction category.")
  in
  let threshold_arg =
    Arg.(
      value
      & opt float Core.Edc.default_threshold
      & info [ "threshold" ] ~docv:"FRAC"
          ~doc:"Relative deviation above which an SDC counts as egregious.")
  in
  Cmd.v
    (Cmd.info "edc"
       ~doc:
         "Grade SDC severity: egregious vs tolerable data corruptions \
          (the soft-computing extension).")
    Term.(const run $ workload_arg $ cat_arg $ trials_arg 200 $ seed_arg $ threshold_arg)

(* --- campaign --- *)

(* Glue between the scheduler's per-trial observation hook and the
   diagnosis record sink. *)
let sink_observer sink ~workload ~tool ~category ~trial verdict stats =
  Diagnose.Sink.add sink
    (Diagnose.Record.of_stats ~workload ~tool ~category ~trial verdict stats)

let records_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "records" ] ~docv:"PATH"
        ~doc:
          "Capture one diagnosis record per trial (fault site, first use \
           of the corrupted value, trap, crash latency) and write them to \
           $(docv); also prints the crash-cause analysis.  Byte-identical \
           for every $(b,--jobs) value.")

let campaign_cmd =
  let run model trials seed csv_file workload_filter jobs journal resume
      records no_snapshot no_compile obs =
    match check_engine_flags ~journal ~resume with
    | `Error _ as e -> e
    | `Ok () ->
    let jobs = resolve_jobs jobs in
    let config = config_of ~no_snapshot ~no_compile ~model ~trials ~seed () in
    let workloads =
      match workload_filter with
      | [] -> Workloads.all
      | names -> List.map Workloads.find_exn names
    in
    let ctx =
      manifest_ctx obs
        [
          ("seed", Obs.Json.Int seed);
          ("trials", Obs.Json.Int trials);
          ("model", Obs.Json.Str (Core.Fault_model.name model));
          ("jobs", Obs.Json.Int jobs);
          ("snapshot", Obs.Json.Bool (not no_snapshot));
          ("compile", Obs.Json.Bool (not no_compile));
          ("journal", Obs.Json.Bool (journal <> None));
          ("records", Obs.Json.Bool (records <> None));
          ("workloads", kv_workloads workloads);
        ]
    in
    Fmt.pr
      "Running campaign: %d workloads x 2 tools x %d categories x %d trials \
       (%d job%s)@."
      (List.length workloads)
      (List.length Core.Category.all)
      trials jobs
      (if jobs = 1 then "" else "s");
    let sink = Option.map (fun _ -> Diagnose.Sink.create ()) records in
    match
      ctx.in_section "execute" @@ fun () ->
      Engine.Scheduler.run ~jobs ?journal ~resume
        ~progress:(Engine.Progress.create ())
        ?observe:(Option.map sink_observer sink)
        ~track_use:(sink <> None) config workloads
    with
    | exception Invalid_argument msg -> `Error (false, msg)
    | result ->
    let prepared = result.Engine.Scheduler.prepared in
    let cells = result.Engine.Scheduler.cells in
    (ctx.in_section "report" @@ fun () ->
     print_newline ();
     Core.Report.table2 workloads;
     print_newline ();
     Core.Report.table3 ();
     print_newline ();
     Core.Report.table1 prepared;
     print_newline ();
     Core.Report.figure2 ();
     Core.Report.table4 prepared;
     print_newline ();
     Core.Report.figure3 cells;
     print_newline ();
     Core.Report.figure4 cells;
     print_newline ();
     Core.Report.table5 cells;
     print_newline ();
     Core.Report.print_claims (Core.Report.evaluate_claims prepared cells));
    (match (sink, records) with
    | Some sink, Some path ->
      print_newline ();
      print_string (Diagnose.Summary.render (Diagnose.Sink.records sink));
      Diagnose.Sink.write sink path;
      Fmt.pr "Diagnosis records written to %s@." path
    | _ -> ());
    record_csv ctx ?path:csv_file ~what:"Raw results"
      (Core.Campaign.to_csv cells);
    finish ctx obs;
    `Ok 0
  in
  let csv_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"FILE" ~doc:"Also write raw cell tallies as CSV.")
  in
  let filter_arg =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"WORKLOAD"
          ~doc:"Restrict the campaign to the named workloads.")
  in
  Cmd.v
    (Cmd.info "campaign"
       ~doc:
         "Run the full study and print every table and figure of the paper \
          (paper values alongside).  With $(b,--jobs) the cells run on a \
          domain pool; output is byte-identical to a sequential run.")
    Term.(
      ret
        (const run $ model_arg $ trials_arg 200 $ seed_arg $ csv_arg
       $ filter_arg $ jobs_arg $ journal_arg $ resume_arg $ records_arg
       $ no_snapshot_arg $ no_compile_arg
       $ obs_term ~manifest_default:(Some "fi-manifest.json")))

(* --- diagnose --- *)

let diagnose_cmd =
  let run workload_filter tools categories model trials seed from records
      csv_file jobs no_snapshot no_compile obs =
    match from with
    | Some path -> (
      (* Consume an existing record file instead of running anything. *)
      match Diagnose.Sink.load path with
      | exception Invalid_argument msg -> `Error (false, msg)
      | rs ->
        print_string (Diagnose.Summary.render rs);
        `Ok 0)
    | None ->
      let config = config_of ~no_snapshot ~no_compile ~model ~trials ~seed () in
      let workloads =
        match workload_filter with
        | [] -> Workloads.all
        | names -> List.map Workloads.find_exn names
      in
      let tools =
        match tools with
        | [] -> [ Core.Campaign.Llfi_tool; Core.Campaign.Pinfi_tool ]
        | l ->
          List.map
            (function
              | `Llfi -> Core.Campaign.Llfi_tool
              | `Pinfi -> Core.Campaign.Pinfi_tool)
            l
      in
      let categories =
        match categories with [] -> Core.Category.all | l -> l
      in
      let sink = Diagnose.Sink.create () in
      let ctx =
        manifest_ctx obs
          [
            ("seed", Obs.Json.Int seed);
            ("trials", Obs.Json.Int trials);
            ("model", Obs.Json.Str (Core.Fault_model.name model));
            ("jobs", Obs.Json.Int (resolve_jobs jobs));
            ("snapshot", Obs.Json.Bool (not no_snapshot));
          ]
      in
      (match
         ctx.in_section "execute" @@ fun () ->
         Engine.Scheduler.run ~jobs:(resolve_jobs jobs) ~tools ~categories
           ~observe:(sink_observer sink) ~track_use:true config workloads
       with
      | exception Invalid_argument msg -> `Error (false, msg)
      | result ->
        print_string (Diagnose.Summary.render (Diagnose.Sink.records sink));
        (match records with
        | Some path ->
          Diagnose.Sink.write sink path;
          Fmt.pr "Diagnosis records written to %s@." path
        | None -> ());
        record_csv ctx ?path:csv_file ~what:"Raw results"
          (Core.Campaign.to_csv result.Engine.Scheduler.cells);
        finish ctx obs;
        `Ok 0)
  in
  let filter_arg =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"WORKLOAD"
          ~doc:"Restrict the analysis to the named workloads.")
  in
  let tools_arg =
    Arg.(
      value
      & opt_all (enum [ ("llfi", `Llfi); ("pinfi", `Pinfi) ]) []
      & info [ "t"; "tool" ] ~docv:"TOOL"
          ~doc:"Injector to diagnose (repeatable; default: both).")
  in
  let cats_arg =
    Arg.(
      value & opt_all category_conv []
      & info [ "c"; "category" ] ~docv:"CAT"
          ~doc:"Instruction category (repeatable; default: all five).")
  in
  let from_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "from" ] ~docv:"PATH"
          ~doc:
            "Analyse an existing record file (written by $(b,--records)) \
             instead of running a campaign.")
  in
  let csv_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"FILE" ~doc:"Also write raw cell tallies as CSV.")
  in
  Cmd.v
    (Cmd.info "diagnose"
       ~doc:
         "Run an injection campaign with per-trial diagnosis capture and \
          print the crash-cause analysis: what corrupted values flow into \
          first (address / control / stack / data), crash-latency \
          distributions, and the attribution of the LLFI-vs-PINFI \
          crash-rate gap to those cause classes.")
    Term.(
      ret
        (const run $ filter_arg $ tools_arg $ cats_arg $ model_arg
       $ trials_arg 200 $ seed_arg $ from_arg $ records_arg $ csv_arg
       $ jobs_arg $ no_snapshot_arg $ no_compile_arg
       $ obs_term ~manifest_default:None))

(* --- exhaust --- *)

let exhaust_cmd =
  let print_exact_cell (e : Core.Campaign.exact_cell) =
    let t = e.Core.Campaign.e_tally in
    Fmt.pr "workload=%s tool=%s category=%s population=%d@." e.e_workload
      (Core.Campaign.tool_name e.e_tool)
      (Core.Category.name e.e_category)
      e.e_population;
    Fmt.pr
      "  enumerated=%d pruned: dead=%d masked=%d equiv=%d; executed=%d \
       (ratio %.1fx)@."
      e.e_enumerated e.e_pruned_dead e.e_pruned_masked e.e_pruned_equiv
      e.e_executed
      (Core.Campaign.pruning_ratio e);
    if Core.Verdict.activated t = 0 then Fmt.pr "  (empty category)@."
    else begin
      Fmt.pr "  exact rates: crash=%.4f%% sdc=%.4f%% benign=%.4f%% hang=%.4f%%"
        (100.0 *. Core.Campaign.exact_crash_rate e)
        (100.0 *. Core.Campaign.exact_sdc_rate e)
        (100.0 *. Core.Campaign.exact_benign_rate e)
        (100.0 *. Core.Campaign.exact_hang_rate e);
      if e.e_bound > 0.0 then
        Fmt.pr " (sampled residual, certified to ±%.4f%%)"
          (100.0 *. e.e_bound);
      Fmt.pr "@."
    end
  in
  let run workload_filter tools categories model prune sample_bound seed
      trials inputs csv_file jobs journal resume obs =
    match check_engine_flags ~journal ~resume with
    | `Error _ as e -> e
    | `Ok () ->
    let jobs = resolve_jobs jobs in
    let workloads =
      match workload_filter with
      | [] -> [ Workloads.libquantum; Workloads.mcf ]
      | names -> List.map Workloads.find_exn names
    in
    let workloads =
      match inputs with
      | [] -> workloads
      | l ->
        List.map
          (fun (w : Core.Workload.t) ->
            { w with Core.Workload.inputs = Array.of_list l;
              input_name = "custom" })
          workloads
    in
    let tools =
      match tools with
      | [] -> [ Core.Campaign.Llfi_tool; Core.Campaign.Pinfi_tool ]
      | l ->
        List.map
          (function
            | `Llfi -> Core.Campaign.Llfi_tool
            | `Pinfi -> Core.Campaign.Pinfi_tool)
          l
    in
    let categories =
      match categories with [] -> [ Core.Category.All ] | l -> l
    in
    let config =
      { Exhaust.prune = (prune = `All); sample_bound; seed }
    in
    let campaign_config = config_of ~model ~trials:(max trials 1) ~seed () in
    let ctx =
      manifest_ctx obs
        [
          ("seed", Obs.Json.Int seed);
          ("model", Obs.Json.Str (Core.Fault_model.name model));
          ("prune", Obs.Json.Bool config.Exhaust.prune);
          ("sample_bound", Obs.Json.Int sample_bound);
          ("jobs", Obs.Json.Int jobs);
          ("trials", Obs.Json.Int trials);
          ("workloads", kv_workloads workloads);
        ]
    in
    match
      ctx.in_section "execute" @@ fun () ->
      Exhaust.run ~jobs ?journal ~resume ~tools ~categories
        ~on_cell:print_exact_cell config campaign_config workloads
    with
    | exception Invalid_argument msg -> `Error (false, msg)
    | result ->
    let cells = result.Exhaust.cells in
    (* Pruning accounting, for the manifest (and the bench gate). *)
    let sum f = List.fold_left (fun acc e -> acc + f e) 0 cells in
    let enumerated = sum (fun e -> e.Core.Campaign.e_enumerated) in
    let executed = sum (fun e -> e.Core.Campaign.e_executed) in
    (match ctx.mf with
    | Some m ->
      Obs.Manifest.set m "enumerated" (Obs.Json.Int enumerated);
      Obs.Manifest.set m "pruned_dead"
        (Obs.Json.Int (sum (fun e -> e.Core.Campaign.e_pruned_dead)));
      Obs.Manifest.set m "pruned_masked"
        (Obs.Json.Int (sum (fun e -> e.Core.Campaign.e_pruned_masked)));
      Obs.Manifest.set m "pruned_equiv"
        (Obs.Json.Int (sum (fun e -> e.Core.Campaign.e_pruned_equiv)));
      Obs.Manifest.set m "executed" (Obs.Json.Int executed)
    | None -> ());
    (* The validation table: exact rates vs a Monte-Carlo campaign of
       --trials injections on the very same prepared workloads. *)
    if trials > 0 then begin
      let sampled =
        ctx.in_section "sampled-comparison" @@ fun () ->
        List.concat_map
          (fun (p : Core.Campaign.prepared) ->
            List.concat_map
              (fun tool ->
                List.map
                  (fun category ->
                    Core.Campaign.run_cell campaign_config p tool category)
                  categories)
              tools)
          result.Exhaust.prepared
      in
      print_newline ();
      Core.Report.exact_vs_sampled cells sampled
    end;
    record_csv ctx ?path:csv_file ~what:"Exact results"
      (Core.Campaign.exact_to_csv cells);
    finish ctx obs;
    `Ok 0
  in
  let filter_arg =
    Arg.(
      value & opt_all string []
      & info [ "w"; "workload" ] ~docv:"NAME"
          ~doc:
            "Benchmark to cover exhaustively (repeatable; default: \
             libquantum and mcf).")
  in
  let tools_arg =
    Arg.(
      value
      & opt_all (enum [ ("llfi", `Llfi); ("pinfi", `Pinfi) ]) []
      & info [ "t"; "tool" ] ~docv:"TOOL"
          ~doc:"Injector (repeatable; default: both).")
  in
  let cats_arg =
    Arg.(
      value & opt_all category_conv []
      & info [ "c"; "category" ] ~docv:"CAT"
          ~doc:"Instruction category (repeatable; default: all).")
  in
  let prune_arg =
    Arg.(
      value
      & opt (enum [ ("all", `All); ("none", `None) ]) `All
      & info [ "prune" ] ~docv:"MODE"
          ~doc:
            "Pruning mode: $(b,all) applies the dead-destination, \
             masked-bit and golden-key equivalence rules; $(b,none) \
             executes \
             every single (instance, bit) fault (the brute-force oracle).")
  in
  let bound_arg =
    Arg.(
      value & opt int 0
      & info [ "sample-bound" ] ~docv:"K"
          ~doc:
            "Cap the executed faults per cell at $(docv): oversized \
             residuals are finished by a deterministic weighted sampler \
             and the cell reports a Chernoff-certified error bound.  0 \
             (the default) executes every surviving fault — fully exact.")
  in
  let inputs_arg =
    Arg.(
      value
      & opt (list int) []
      & info [ "inputs" ] ~docv:"N,N,..."
          ~doc:
            "Replace every selected workload's input vector — the lever \
             that bounds the dynamic fault space (full default inputs \
             make exhaustive coverage very slow).")
  in
  let csv_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"FILE"
          ~doc:"Write exact per-cell results (counts, pruning, rates) as CSV.")
  in
  let trials_arg =
    Arg.(
      value & opt int 200
      & info [ "n"; "trials" ] ~docv:"N"
          ~doc:
            "Monte-Carlo trials per cell for the exact-vs-sampled \
             validation table; 0 skips the comparison.")
  in
  Cmd.v
    (Cmd.info "exhaust"
       ~doc:
         "Exhaustive + pruned fault-space campaign: enumerate every \
          (dynamic instance, bit) fault of each cell, prune the provably \
          golden-path ones, execute each survivor once, and report exact \
          (CI-free) crash/SDC/benign rates beside \
          Monte-Carlo estimates.  Output is byte-identical for every \
          $(b,--jobs) value.")
    Term.(
      ret
        (const run $ filter_arg $ tools_arg $ cats_arg $ model_arg
       $ prune_arg $ bound_arg $ seed_arg $ trials_arg $ inputs_arg $ csv_arg
       $ jobs_arg $ journal_arg $ resume_arg $ obs_term ~manifest_default:None))

(* --- fuzz --- *)

let fuzz_cmd =
  let run seed count coverage trials jobs workload_filter models mutate corpus
      max_repros obs =
    let mutate =
      match mutate with
      | None -> `Ok None
      | Some name -> (
        match Fuzz.Mutate.of_name name with
        | Some m -> `Ok (Some m)
        | None ->
          `Error
            ( false,
              Printf.sprintf "unknown mutation %S (try: %s)" name
                (String.concat ", "
                   (List.map Fuzz.Mutate.name Fuzz.Mutate.all)) ))
    in
    match mutate with
    | `Error _ as e -> e
    | `Ok mutate ->
      let ctx =
        manifest_ctx obs
          [
            ("seed", Obs.Json.Int seed);
            ("count", Obs.Json.Int count);
            ("coverage", Obs.Json.Bool coverage);
          ]
      in
      if coverage then begin
        let workloads =
          match workload_filter with
          | [] -> Workloads.all
          | names -> List.map Workloads.find_exn names
        in
        let report =
          ctx.in_section "coverage" @@ fun () ->
          Fuzz.Coverage.measure ~jobs:(resolve_jobs jobs) ~workloads ~models
            ~trials ~seed ()
        in
        print_string (Fuzz.Coverage.render report);
        finish ctx obs;
        `Ok 0
      end
      else begin
        let summary =
          ctx.in_section "fuzz" @@ fun () ->
          Fuzz.campaign ?mutate ~max_repros ~seed ~count ()
        in
        print_string (Fuzz.render_summary ?mutate summary);
        (match corpus with
        | Some dir when summary.Fuzz.s_findings <> [] ->
          let paths = Fuzz.write_corpus ~dir summary in
          List.iter (fun p -> Fmt.pr "repro written to %s@." p) paths
        | _ -> ());
        finish ctx obs;
        `Ok (if summary.Fuzz.s_findings = [] then 0 else 1)
      end
  in
  let count_arg =
    Arg.(
      value & opt int 200
      & info [ "count" ] ~docv:"N" ~doc:"Number of programs to generate.")
  in
  let coverage_arg =
    Arg.(
      value & flag
      & info [ "coverage" ]
          ~doc:
            "Print the injection-space coverage report instead of fuzzing: \
             per workload x tool x category, the static sites and bit \
             positions the samplers can reach vs what $(b,--trials) \
             injections visit.  Byte-identical for every $(b,--jobs) value.")
  in
  let mutate_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "mutate" ] ~docv:"BUG"
          ~doc:
            "Plant a known compiler bug (add-to-sub, cmp-flip, drop-store) \
             into the optimization pipeline; the fuzzer must find and \
             minimize it.  Exit status is then expected to be nonzero.")
  in
  let corpus_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:"Write minimized repros for any divergence found into $(docv).")
  in
  let max_repros_arg =
    Arg.(
      value & opt int 5
      & info [ "max-repros" ] ~docv:"N"
          ~doc:"Minimize at most $(docv) divergent programs (minimization \
                dominates runtime once a bug is present).")
  in
  let filter_arg =
    Arg.(
      value & opt_all string []
      & info [ "w"; "workload" ] ~docv:"NAME"
          ~doc:"Restrict $(b,--coverage) to the named workloads (repeatable).")
  in
  let models_arg =
    Arg.(
      value & opt_all model_conv []
      & info [ "model" ] ~docv:"MODEL"
          ~doc:
            "Fault model for $(b,--coverage) (repeatable; default: \
             bitflip).  With several models the report covers the \
             (site, bit, model) fault space.")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential fuzzing of the pipeline itself: random MiniC and IR \
          programs are run through every optimization pass, the full \
          pipeline and the backend, and all levels must agree with the \
          unoptimized reference.  Exit status 1 if any divergence is found. \
          With $(b,--coverage), report injection-space coverage of the \
          LLFI/PINFI samplers instead.")
    Term.(
      ret
        (const run $ seed_arg $ count_arg $ coverage_arg $ trials_arg 200
       $ jobs_arg $ filter_arg $ models_arg $ mutate_arg $ corpus_arg
       $ max_repros_arg $ obs_term ~manifest_default:None))

(* --- serve / submit / shutdown / loadgen: the campaign service --- *)

let socket_arg =
  Arg.(
    value
    & opt string "fi-serve.sock"
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket the campaign service listens (connects) on.")

let tools_of = function
  | [] -> [ Core.Campaign.Llfi_tool; Core.Campaign.Pinfi_tool ]
  | l ->
    List.map
      (function
        | `Llfi -> Core.Campaign.Llfi_tool | `Pinfi -> Core.Campaign.Pinfi_tool)
      l

let serve_cmd =
  let run socket tcp pool chunk journal idle no_snapshot no_compile obs =
    let tcp =
      match tcp with
      | None -> `Ok None
      | Some spec -> (
        match String.rindex_opt spec ':' with
        | Some i -> (
          match int_of_string_opt (String.sub spec (i + 1) (String.length spec - i - 1)) with
          | Some port -> `Ok (Some (String.sub spec 0 i, port))
          | None -> `Error (true, "bad --tcp PORT in " ^ spec))
        | None -> `Error (true, "--tcp expects HOST:PORT"))
    in
    match tcp with
    | `Error _ as e -> e
    | `Ok tcp ->
      let pool = resolve_jobs pool in
      let ctx =
        manifest_ctx obs
          [
            ("socket", Obs.Json.Str socket);
            ("pool", Obs.Json.Int pool);
            ("chunk", Obs.Json.Int (Option.value chunk ~default:0));
            ("journal", Obs.Json.Bool (journal <> None));
            ("snapshot", Obs.Json.Bool (not no_snapshot));
            ("compile", Obs.Json.Bool (not no_compile));
          ]
      in
      let cfg =
        {
          (Serve.Server.default ~socket) with
          Serve.Server.tcp;
          pool_size = pool;
          chunk;
          journal;
          base =
            {
              Core.Campaign.default_config with
              snapshot = not no_snapshot;
              compile = not no_compile;
            };
          idle_timeout = idle;
          handle_signals = true;
        }
      in
      let on_ready () =
        Fmt.pr "fi serve: listening on %s (%d workers)@." socket pool;
        (* scripts wait for this line before connecting *)
        flush stdout
      in
      (match ctx.in_section "serve" (fun () -> Serve.Server.run ~on_ready cfg) with
      | exception Unix.Unix_error (err, fn, arg) ->
        `Error
          (false, Printf.sprintf "%s(%s): %s" fn arg (Unix.error_message err))
      | exception Invalid_argument msg -> `Error (false, msg)
      | stats ->
        (match ctx.mf with
        | Some m ->
          Obs.Manifest.set m "connections" (Obs.Json.Int stats.Serve.Server.connections);
          Obs.Manifest.set m "jobs_admitted" (Obs.Json.Int stats.Serve.Server.admitted);
          Obs.Manifest.set m "jobs_completed" (Obs.Json.Int stats.Serve.Server.completed);
          Obs.Manifest.set m "jobs_failed" (Obs.Json.Int stats.Serve.Server.failed);
          Obs.Manifest.set m "jobs_resumed" (Obs.Json.Int stats.Serve.Server.resumed)
        | None -> ());
        Fmt.pr
          "fi serve: drained after %d connection(s), %d job(s) admitted \
           (%d completed, %d failed, %d resumed)@."
          stats.Serve.Server.connections stats.Serve.Server.admitted stats.Serve.Server.completed
          stats.Serve.Server.failed stats.Serve.Server.resumed;
        finish ctx obs;
        `Ok 0)
  in
  let tcp_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "tcp" ] ~docv:"HOST:PORT"
          ~doc:"Also listen on a TCP socket (the Unix socket stays primary).")
  in
  let pool_arg =
    Arg.(
      value & opt int 0
      & info [ "pool" ] ~docv:"N"
          ~doc:
            "Worker domains in the persistent pool; 0 (the default) uses \
             the runtime-recommended count.")
  in
  let chunk_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "chunk" ] ~docv:"N"
          ~doc:
            "Trials per shard (streaming and checkpoint granularity).  \
             Default: sized per job so one cell feeds the whole pool.  \
             Results are byte-identical for every value.")
  in
  let serve_journal_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"PATH"
          ~doc:
            "Job journal: every admitted job and completed shard is \
             checkpointed so a killed server resumes unfinished jobs on \
             restart (re-running only the missing shards).")
  in
  let idle_arg =
    Arg.(
      value & opt float 0.
      & info [ "idle-timeout" ] ~docv:"SECONDS"
          ~doc:"Close connections with no jobs and no traffic for this long; \
                0 disables.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the campaign service: a long-lived server with a warm worker \
          pool that accepts injection jobs over a Unix (or TCP) socket, \
          shards them into trial ranges, and streams verdict batches.  \
          Results are byte-identical to the offline $(b,campaign) / \
          $(b,diagnose) commands.  SIGTERM (or $(b,fi shutdown)) drains: \
          in-flight jobs finish and stream completely before the server \
          exits.")
    Term.(
      ret
        (const run $ socket_arg $ tcp_arg $ pool_arg $ chunk_arg
       $ serve_journal_arg $ idle_arg $ no_snapshot_arg $ no_compile_arg
       $ obs_term ~manifest_default:None))

let serve_tools_arg =
  Arg.(
    value
    & opt_all (enum [ ("llfi", `Llfi); ("pinfi", `Pinfi) ]) []
    & info [ "t"; "tool" ] ~docv:"TOOL"
        ~doc:"Injector (repeatable; default: both).")

let serve_cats_arg =
  Arg.(
    value & opt_all category_conv []
    & info [ "c"; "category" ] ~docv:"CAT"
        ~doc:"Instruction category (repeatable; default: all five).")

let submit_cmd =
  let run workload socket tools categories model trials seed csv_file out
      quiet obs =
    let job =
      {
        Serve.Wire.j_workload = workload;
        j_tools = tools_of tools;
        j_categories =
          (match categories with [] -> Core.Category.all | l -> l);
        j_model = model;
        j_trials = trials;
        j_seed = seed;
        j_out = out;
      }
    in
    let ctx =
      manifest_ctx obs
        [
          ("socket", Obs.Json.Str socket);
          ("workload", Obs.Json.Str workload);
          ("model", Obs.Json.Str (Core.Fault_model.name model));
          ("seed", Obs.Json.Int seed);
          ("trials", Obs.Json.Int trials);
        ]
    in
    match Serve.Client.connect (Serve.Client.Unix_sock socket) with
    | exception Unix.Unix_error (err, _, _) ->
      `Error
        ( false,
          Printf.sprintf "cannot reach the campaign service on %s: %s" socket
            (Unix.error_message err) )
    | client ->
      let batches = ref 0 in
      let on_batch (b : Serve.Wire.batch) =
        incr batches;
        if not quiet then
          Fmt.epr "batch %s/%s trials %d..%d@."
            (Core.Campaign.tool_name b.b_tool)
            (Core.Category.name b.b_category)
            b.b_first
            (b.b_first + b.b_count - 1)
      in
      let result =
        ctx.in_section "submit" @@ fun () -> Serve.Client.submit client ~on_batch job
      in
      Serve.Client.close client;
      (match result with
      | Error msg -> `Error (false, msg)
      | Ok r ->
        Fmt.pr "job %d done: %d verdict batches, digest %s@." r.Serve.Client.r_job
          r.Serve.Client.r_batches r.Serve.Client.r_digest;
        record_csv ctx ?path:csv_file ~what:"Raw results" r.Serve.Client.r_csv;
        finish ctx obs;
        `Ok 0)
  in
  let workload_name_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"WORKLOAD" ~doc:"Workload to inject (validated server-side).")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"PATH"
          ~doc:
            "Server-side CSV output path: the server writes the result \
             there even if this client disconnects (and after a crash \
             recovery, when the job finishes headless).")
  in
  let csv_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"FILE"
          ~doc:"Write the streamed result CSV client-side.")
  in
  let quiet_arg =
    Arg.(value & flag & info [ "quiet" ] ~doc:"No per-batch progress on stderr.")
  in
  Cmd.v
    (Cmd.info "submit"
       ~doc:
         "Submit one injection job to a running campaign service and stream \
          its verdict batches.  The client independently reassembles the \
          batches and fails if they do not merge into the server's reported \
          CSV — no batch may be lost or duplicated, including across a \
          server drain.")
    Term.(
      ret
        (const run $ workload_name_arg $ socket_arg $ serve_tools_arg
       $ serve_cats_arg $ model_arg $ trials_arg 200 $ seed_arg $ csv_arg
       $ out_arg $ quiet_arg $ obs_term ~manifest_default:None))

let shutdown_cmd =
  let run socket immediate =
    match Serve.Client.connect (Serve.Client.Unix_sock socket) with
    | exception Unix.Unix_error (err, _, _) ->
      `Error
        ( false,
          Printf.sprintf "cannot reach the campaign service on %s: %s" socket
            (Unix.error_message err) )
    | client ->
      Serve.Client.shutdown client ~drain:(not immediate);
      Serve.Client.close client;
      Fmt.pr "fi shutdown: server %s@."
        (if immediate then "stopped" else "drained and stopped");
      `Ok 0
  in
  let now_arg =
    Arg.(
      value & flag
      & info [ "now" ]
          ~doc:
            "Stop without draining: in-flight jobs stay checkpointed in the \
             server's journal and resume on the next start.")
  in
  Cmd.v
    (Cmd.info "shutdown"
       ~doc:
         "Ask a running campaign service to shut down.  By default it \
          drains first: every in-flight job finishes and streams its \
          remaining verdict batches before the server says goodbye.")
    Term.(ret (const run $ socket_arg $ now_arg))

let loadgen_cmd =
  let run socket jobs concurrency workload model trials seed vary_seed
      json_file =
    let job_of i =
      {
        Serve.Wire.j_workload = workload;
        j_tools = tools_of [];
        j_categories = Core.Category.all;
        j_model = model;
        j_trials = trials;
        j_seed = (if vary_seed then seed + i else seed);
        j_out = None;
      }
    in
    match
      Serve.Client.loadgen (Serve.Client.Unix_sock socket) ~jobs ~concurrency ~job_of
    with
    | exception Unix.Unix_error (err, _, _) ->
      `Error
        ( false,
          Printf.sprintf "cannot reach the campaign service on %s: %s" socket
            (Unix.error_message err) )
    | s ->
      Fmt.pr "jobs=%d ok=%d failed=%d wall=%.2fs throughput=%.2f jobs/s@."
        s.Serve.Client.l_jobs s.Serve.Client.l_ok s.Serve.Client.l_failed s.Serve.Client.l_wall
        s.Serve.Client.l_jobs_per_s;
      Fmt.pr "latency: mean=%.1fms p50=%.1fms p99=%.1fms@." s.Serve.Client.l_mean_ms
        s.Serve.Client.l_p50_ms s.Serve.Client.l_p99_ms;
      (match json_file with
      | Some path ->
        let oc = open_out path in
        Printf.fprintf oc
          "{\"jobs\": %d, \"ok\": %d, \"failed\": %d, \"wall_s\": %.6f, \
           \"jobs_per_s\": %.6f, \"mean_ms\": %.6f, \"p50_ms\": %.6f, \
           \"p99_ms\": %.6f}\n"
          s.Serve.Client.l_jobs s.Serve.Client.l_ok s.Serve.Client.l_failed s.Serve.Client.l_wall
          s.Serve.Client.l_jobs_per_s s.Serve.Client.l_mean_ms s.Serve.Client.l_p50_ms
          s.Serve.Client.l_p99_ms;
        close_out oc;
        Fmt.pr "Load-test stats written to %s@." path
      | None -> ());
      `Ok (if s.Serve.Client.l_failed = 0 then 0 else 1)
  in
  let jobs_arg =
    Arg.(
      value & opt int 16
      & info [ "jobs" ] ~docv:"N" ~doc:"Total jobs to submit.")
  in
  let concurrency_arg =
    Arg.(
      value & opt int 4
      & info [ "concurrency" ] ~docv:"C"
          ~doc:"Concurrent connections (one outstanding job each).")
  in
  let workload_name_arg =
    Arg.(
      value
      & opt string "mcf"
      & info [ "w"; "workload" ] ~docv:"NAME" ~doc:"Workload each job injects.")
  in
  let vary_seed_arg =
    Arg.(
      value & opt bool true
      & info [ "vary-seed" ] ~docv:"BOOL"
          ~doc:
            "Give every job a distinct seed so the server's cell cache \
             cannot coalesce them — each job really executes.  false \
             measures the pure cache-hit path.")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"Also write the stats as JSON.")
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:
         "Load-test a running campaign service: submit $(b,--jobs) jobs \
          over $(b,--concurrency) connections and report throughput and \
          per-job latency percentiles.  Exit status 1 if any job failed.")
    Term.(
      ret
        (const run $ socket_arg $ jobs_arg $ concurrency_arg
       $ workload_name_arg $ model_arg $ trials_arg 20 $ seed_arg
       $ vary_seed_arg $ json_arg))

let main_cmd =
  let doc =
    "reproduction of 'Quantifying the Accuracy of High-Level Fault Injection \
     Techniques for Hardware Faults' (DSN 2014)"
  in
  Cmd.group
    (Cmd.info "fi" ~version:"1.0.0" ~doc)
    [ list_cmd; run_cmd; emit_cmd; profile_cmd; inject_cmd; propagate_cmd; edc_cmd; check_cmd; campaign_cmd; diagnose_cmd; exhaust_cmd; fuzz_cmd; serve_cmd; submit_cmd; shutdown_cmd; loadgen_cmd ]

let () = exit (Cmd.eval' main_cmd)
