(* QCheck differential property for the closure-compiled tier: on
   random programs from both fuzz grammars, compiled execution must be
   bit-for-bit identical to tree-walking interpretation at both levels
   (IR and x86) — output bytes, trap tags, step counts, injection
   bookkeeping and first-use classification.

   This is the compile tier's own fuzzer, complementing the cross-level
   oracle in lib/fuzz: the oracle compares program *meanings* across
   pipeline stages (where trap payloads legitimately differ), while
   this property compares two executions of the *same* program at the
   same level, so everything must match exactly.

   A failing seed is minimized with the lib/fuzz minimizer (keeping
   "compiled diverges from interpreted" as the predicate) and the repro
   written to test/corpus/, where test_corpus replays it forever. *)

let corpus_dir =
  if Sys.file_exists "corpus" then "corpus" else Filename.concat "test" "corpus"

let stats_key (s : Vm.Outcome.stats) =
  let outcome =
    match s.Vm.Outcome.outcome with
    | Vm.Outcome.Finished out -> "finished(" ^ String.escaped out ^ ")"
    | Vm.Outcome.Crashed t -> Format.asprintf "crashed(%a)" Vm.Trap.pp t
    | Vm.Outcome.Hung -> "hung"
  in
  Printf.sprintf "%s|steps=%d|inj=%b|act=%b|note=%s|istep=%d|site=%d|use=%s"
    outcome s.Vm.Outcome.steps s.Vm.Outcome.injected s.Vm.Outcome.activated
    s.Vm.Outcome.fault_note s.Vm.Outcome.injected_step s.Vm.Outcome.fault_site
    (Vm.First_use.name s.Vm.Outcome.first_use)

(* Compare the two engines on one program: golden observables from the
   two preparations, then a few tracked injection trials per non-empty
   category with identical rng streams.  Each trial draws its fault
   model from the seed-dependent rotation of the full model list, so
   the differential covers every corruption semantics, not just
   bitflips.  Returns the first divergence as [Some description]. *)
let models = Array.of_list Core.Fault_model.all

let divergence ?(model_offset = 0) (prog : Ir.Prog.t) =
  let model_of trial =
    models.((model_offset + trial) mod Array.length models)
  in
  let exception Diverged of string in
  let check what a b =
    if not (String.equal a b) then
      raise (Diverged (Printf.sprintf "%s: %s <> %s" what a b))
  in
  try
    let asm = Backend.compile prog in
    let li = Core.Llfi.prepare ~compile:false ~inputs:[||] prog in
    let lc = Core.Llfi.prepare ~compile:true ~inputs:[||] prog in
    let pi = Core.Pinfi.prepare ~compile:false ~inputs:[||] asm in
    let pc = Core.Pinfi.prepare ~compile:true ~inputs:[||] asm in
    check "llfi golden output" li.Core.Llfi.golden_output
      lc.Core.Llfi.golden_output;
    check "llfi golden steps"
      (string_of_int li.Core.Llfi.golden_steps)
      (string_of_int lc.Core.Llfi.golden_steps);
    check "pinfi golden output" pi.Core.Pinfi.golden_output
      pc.Core.Pinfi.golden_output;
    check "pinfi golden steps"
      (string_of_int pi.Core.Pinfi.golden_steps)
      (string_of_int pc.Core.Pinfi.golden_steps);
    List.iter
      (fun cat ->
        let cname = Core.Category.name cat in
        if Core.Llfi.dynamic_count li cat > 0 then
          for trial = 0 to 5 do
            let seed = Int64.of_int ((trial * 6151) + 3) in
            let model = model_of trial in
            check
              (Printf.sprintf "llfi %s trial %d model %s" cname trial
                 (Core.Fault_model.name model))
              (stats_key
                 (Core.Llfi.inject ~track_use:true ~model li cat
                    (Support.Rng.create seed)))
              (stats_key
                 (Core.Llfi.inject ~track_use:true ~model lc cat
                    (Support.Rng.create seed)))
          done;
        if Core.Pinfi.dynamic_count pi cat > 0 then
          for trial = 0 to 5 do
            let seed = Int64.of_int ((trial * 1299709) + 5) in
            let model = model_of trial in
            check
              (Printf.sprintf "pinfi %s trial %d model %s" cname trial
                 (Core.Fault_model.name model))
              (stats_key
                 (Core.Pinfi.inject ~track_use:true ~model pi cat
                    (Support.Rng.create seed)))
              (stats_key
                 (Core.Pinfi.inject ~track_use:true ~model pc cat
                    (Support.Rng.create seed)))
          done)
      Core.Category.all;
    None
  with
  | Diverged msg -> Some msg
  | Invalid_argument msg ->
    (* One engine accepted the program and the other refused (or the
       program is a generator artifact — either way worth seeing). *)
    Some ("invalid_arg: " ^ msg)

let minic_diverges src =
  match Opt.optimize (Minic.compile src) with
  | prog -> divergence prog <> None
  | exception _ -> false

(* Shrink a failing MiniC program with the fuzz minimizer, write the
   repro next to the oracle corpus, and return the failure message
   QCheck reports. *)
let report_minic_failure seed src msg =
  let repro =
    match Minic.Parser.parse_program src with
    | exception _ -> src
    | ast -> (
      match Fuzz.Minimize.minimize ~keep:(fun p -> minic_diverges (Fuzz.Pp.program p)) ast with
      | small, _ -> Fuzz.Pp.program small
      | exception _ -> src)
  in
  let path =
    Filename.concat corpus_dir (Printf.sprintf "compile-%04d.c" seed)
  in
  (try
     let oc = open_out path in
     output_string oc repro;
     close_out oc
   with Sys_error _ -> ());
  Printf.sprintf "seed %d: compiled tier diverges (%s); repro: %s" seed msg
    path

let prop_minic seed =
  let src = Fuzz.Gen.source ~seed ~size:8 () in
  match Opt.optimize (Minic.compile src) with
  | exception exn ->
    QCheck.Test.fail_report
      (Printf.sprintf "seed %d: generator artifact: %s" seed
         (Printexc.to_string exn))
  | prog -> (
    match divergence ~model_offset:seed prog with
    | None -> true
    | Some msg -> QCheck.Test.fail_report (report_minic_failure seed src msg))

let prop_ir seed =
  match Fuzz.Gen_ir.generate ~seed () with
  | exception exn ->
    QCheck.Test.fail_report
      (Printf.sprintf "ir seed %d: generator artifact: %s" seed
         (Printexc.to_string exn))
  | prog -> (
    match divergence ~model_offset:seed prog with
    | None -> true
    | Some msg ->
      (* IR programs are already small; record the text directly. *)
      let path =
        Filename.concat corpus_dir (Printf.sprintf "compile-%04d.ll" seed)
      in
      (try
         let oc = open_out path in
         output_string oc (Ir.Printer.prog_to_string prog);
         close_out oc
       with Sys_error _ -> ());
      QCheck.Test.fail_report
        (Printf.sprintf "ir seed %d: compiled tier diverges (%s); repro: %s"
           seed msg path))

(* A failing generator seed reproduces with
   QCHECK_SEED=<n> dune runtest, or directly as Fuzz.Gen.source ~seed. *)
let seed_gen = QCheck.make ~print:string_of_int QCheck.Gen.(int_range 0 4095)

let tests =
  [
    QCheck.Test.make ~count:120 ~name:"compiled == interpreted (MiniC programs)"
      seed_gen prop_minic;
    QCheck.Test.make ~count:80 ~name:"compiled == interpreted (IR programs)"
      seed_gen prop_ir;
  ]

let () =
  Alcotest.run "compile_prop"
    [ ("differential", List.map QCheck_alcotest.to_alcotest tests) ]
