(* Tests for lib/serve: the campaign service.

   The load-bearing properties:
   - the wire codec is total (never raises on any input), round-trips
     every message, rejects foreign versions, and reports truncated
     frames as Need_more — the exact contract the select loop relies on;
   - Plan.shards partitions the trial range for any chunk size;
   - the journal round-trips its records and survives a torn tail;
   - a served job's CSV is byte-identical to the offline campaign of
     the same spec, shard plan and cell sharing notwithstanding;
   - a drain-shutdown loses no verdict batch and duplicates none
     (the client's stream reassembly is the checker);
   - a journaled, unfinished job resumes headless on restart, re-runs
     only its missing shards, and still produces the offline CSV. *)

module Wire = Serve.Wire
module Plan = Serve.Plan
module Joblog = Serve.Joblog
module Server = Serve.Server
module Client = Serve.Client

let tools = [ Core.Campaign.Llfi_tool; Core.Campaign.Pinfi_tool ]

(* --- generators --- *)

let tool_gen = QCheck.Gen.oneofl tools
let cat_gen = QCheck.Gen.oneofl Core.Category.all

let model_gen =
  QCheck.Gen.(
    oneof
      [
        oneofl
          [
            Core.Fault_model.Bitflip;
            Core.Fault_model.Stuck_at_0;
            Core.Fault_model.Stuck_at_1;
            Core.Fault_model.Skip;
            Core.Fault_model.Load_value;
          ];
        map (fun n -> Core.Fault_model.Multi_bit n) (int_range 1 64);
      ])

let str_gen =
  (* arbitrary bytes: the codec length-prefixes, so nothing is special *)
  QCheck.Gen.(string_size ~gen:(map Char.chr (int_range 0 255)) (int_range 0 40))

let job_gen =
  QCheck.Gen.(
    map
      (fun ((w, ts, cs, (n, seed, out)), m) ->
        {
          Wire.j_workload = w;
          j_tools = ts;
          j_categories = cs;
          j_model = m;
          j_trials = n;
          j_seed = seed;
          j_out = out;
        })
      (pair
         (quad str_gen
            (list_size (int_range 0 4) tool_gen)
            (list_size (int_range 0 6) cat_gen)
            (triple (int_range 0 100000) (int_range 0 1000000)
               (option str_gen)))
         model_gen))

let tally_gen =
  QCheck.Gen.(
    map
      (fun ((a, b, c, d), (e, f, g)) ->
        {
          Core.Verdict.trials = a;
          benign = b;
          sdc = c;
          crash = d;
          hang = e;
          not_activated = f;
          not_injected = g;
        })
      (pair
         (quad (int_range 0 10000) (int_range 0 10000) (int_range 0 10000)
            (int_range 0 10000))
         (triple (int_range 0 10000) (int_range 0 10000) (int_range 0 10000))))

let batch_gen =
  QCheck.Gen.(
    map
      (fun ((j, first, count), (tool, cat, model), (pop, tally)) ->
        {
          Wire.b_job = j;
          b_tool = tool;
          b_category = cat;
          b_model = model;
          b_first = first;
          b_count = count;
          b_population = pop;
          b_tally = tally;
        })
      (triple
         (triple (int_range 0 1000) (int_range 0 100000) (int_range 0 1000))
         (triple tool_gen cat_gen model_gen)
         (pair (int_range 0 1000000) tally_gen)))

let client_msg_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun c -> Wire.Hello { client = c }) str_gen;
        map (fun j -> Wire.Submit j) job_gen;
        map (fun d -> Wire.Shutdown { drain = d }) bool;
        return Wire.Ping;
      ])

let server_msg_gen =
  QCheck.Gen.(
    oneof
      [
        map2 (fun s p -> Wire.Welcome { server = s; pool = p }) str_gen
          (int_range 0 256);
        map (fun j -> Wire.Ack { job = j }) (int_range 0 100000);
        map (fun b -> Wire.Batch b) batch_gen;
        map2
          (fun j (csv, digest) -> Wire.Job_done { job = j; csv; digest })
          (int_range 0 100000) (pair str_gen str_gen);
        map2
          (fun j m -> Wire.Error { job = j; message = m })
          (option (int_range 0 100000))
          str_gen;
        return Wire.Pong;
        return Wire.Bye;
      ])

let client_msg_arb =
  QCheck.make ~print:(fun m -> String.escaped (Wire.encode_client m)) client_msg_gen

let server_msg_arb =
  QCheck.make ~print:(fun m -> String.escaped (Wire.encode_server m)) server_msg_gen

(* --- codec properties --- *)

let test_client_roundtrip =
  QCheck.Test.make ~name:"client codec round-trips" ~count:500 client_msg_arb
    (fun m ->
      let enc = Wire.encode_client m in
      match Wire.decode_client enc with
      | Wire.Got (m', n) -> m' = m && n = String.length enc
      | Wire.Need_more | Wire.Bad _ -> false)

let test_server_roundtrip =
  QCheck.Test.make ~name:"server codec round-trips" ~count:500 server_msg_arb
    (fun m ->
      let enc = Wire.encode_server m in
      match Wire.decode_server enc with
      | Wire.Got (m', n) -> m' = m && n = String.length enc
      | Wire.Need_more | Wire.Bad _ -> false)

let test_frame_boundary =
  QCheck.Test.make ~name:"decoder consumes exactly one frame"
    ~count:200
    (QCheck.pair server_msg_arb server_msg_arb)
    (fun (m1, m2) ->
      let enc1 = Wire.encode_server m1 in
      match Wire.decode_server (enc1 ^ Wire.encode_server m2) with
      | Wire.Got (m', n) -> m' = m1 && n = String.length enc1
      | Wire.Need_more | Wire.Bad _ -> false)

let test_truncation =
  QCheck.Test.make ~name:"every strict prefix is Need_more" ~count:200
    client_msg_arb (fun m ->
      let enc = Wire.encode_client m in
      let ok = ref true in
      for n = 0 to String.length enc - 1 do
        match Wire.decode_client (String.sub enc 0 n) with
        | Wire.Need_more -> ()
        | Wire.Got _ | Wire.Bad _ -> ok := false
      done;
      !ok)

let test_garbage_total =
  QCheck.Test.make ~name:"decoder is total on arbitrary bytes" ~count:1000
    (QCheck.make
       QCheck.Gen.(
         string_size ~gen:(map Char.chr (int_range 0 255)) (int_range 0 200)))
    (fun s ->
      (match Wire.decode_client s with
      | Wire.Got _ | Wire.Need_more | Wire.Bad _ -> ());
      (match Wire.decode_server s with
      | Wire.Got _ | Wire.Need_more | Wire.Bad _ -> ());
      true)

let flip_byte s i c =
  let b = Bytes.of_string s in
  Bytes.set b i c;
  Bytes.to_string b

let test_version_rejected =
  QCheck.Test.make ~name:"foreign protocol version is Bad" ~count:200
    client_msg_arb (fun m ->
      let enc = Wire.encode_client m in
      let bumped = flip_byte enc 1 (Char.chr ((Wire.version + 1) land 0xff)) in
      match Wire.decode_client bumped with
      | Wire.Bad _ -> true
      | Wire.Got _ | Wire.Need_more -> false)

let test_magic_rejected =
  QCheck.Test.make ~name:"wrong magic byte is Bad" ~count:200 client_msg_arb
    (fun m ->
      let enc = Wire.encode_client m in
      match Wire.decode_client (flip_byte enc 0 'X') with
      | Wire.Bad _ -> true
      | Wire.Got _ | Wire.Need_more -> false)

let model_arb = QCheck.make ~print:Core.Fault_model.name model_gen

let test_model_name_roundtrip =
  QCheck.Test.make ~name:"fault-model names round-trip" ~count:500 model_arb
    (fun m ->
      Core.Fault_model.of_name (Core.Fault_model.name m)
      = Some m)

let test_wire_is_v2 () =
  (* the model field changed the frame layout, so the version must have
     been bumped: a v1 peer fails fast (test_version_rejected) instead
     of misparsing model bytes as trial counts *)
  Alcotest.(check int) "model field bumped the protocol version" 2 Wire.version

(* --- planning --- *)

let test_shards_partition =
  QCheck.Test.make ~name:"shards partition the trial range" ~count:500
    (QCheck.pair (QCheck.int_range 1 60) (QCheck.int_range (-5) 500))
    (fun (chunk, trials) ->
      let shards = Plan.shards ~chunk ~trials in
      if trials <= 0 then shards = [ (0, 0) ]
      else
        let rec tile at = function
          | [] -> at = trials
          | (first, count) :: rest ->
            first = at && count >= 1 && count <= chunk && tile (at + count) rest
        in
        tile 0 shards)

let test_default_chunk () =
  List.iter
    (fun (pool, trials) ->
      let c = Plan.default_chunk ~pool ~trials in
      Alcotest.(check bool)
        (Printf.sprintf "chunk for pool=%d trials=%d in bounds" pool trials)
        true
        (c >= 1 && c <= 50 && (trials <= 1 || c <= max 1 trials)))
    [ (1, 0); (1, 1); (2, 7); (4, 200); (8, 1000); (16, 3); (3, 1000000) ]

(* --- journal --- *)

let sample_job out =
  {
    Wire.j_workload = "mcf";
    j_tools = tools;
    j_categories = [ Core.Category.Arithmetic; Core.Category.All ];
    (* non-default: the journal's model token must survive the trip *)
    j_model = Core.Fault_model.Stuck_at_1;
    j_trials = 20;
    j_seed = 7;
    j_out = out;
  }

let sample_shard =
  {
    Joblog.s_tool = Core.Campaign.Llfi_tool;
    s_category = Core.Category.All;
    s_first = 10;
    s_count = 10;
    s_population = 12345;
    s_tally =
      {
        Core.Verdict.trials = 10;
        benign = 4;
        sdc = 3;
        crash = 2;
        hang = 1;
        not_activated = 0;
        not_injected = 0;
      };
  }

let with_tmp f =
  let path = Filename.temp_file "fi-serve-test" ".log" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let test_joblog_roundtrip () =
  with_tmp (fun path ->
      Sys.remove path;
      let t, entries = Joblog.start ~path ~snapshot:true in
      Alcotest.(check int) "fresh journal is empty" 0 (List.length entries);
      Joblog.record_job t ~id:1 ~chunk:10 (sample_job (Some "/tmp/out with space.csv"));
      Joblog.record_shard t ~id:1 sample_shard;
      Joblog.record_job t ~id:2 ~chunk:5 (sample_job None);
      Joblog.record_done t ~id:1 ~digest:"cafebabe";
      Joblog.record_fail t ~id:2;
      Joblog.close t;
      match Joblog.load ~path ~snapshot:true with
      | [ e1; e2 ] ->
        Alcotest.(check int) "id order" 1 e1.Joblog.e_id;
        Alcotest.(check bool) "job 1 spec survives" true
          (e1.Joblog.e_job = sample_job (Some "/tmp/out with space.csv"));
        Alcotest.(check int) "chunk survives" 10 e1.Joblog.e_chunk;
        Alcotest.(check bool) "shard survives" true
          (e1.Joblog.e_shards = [ sample_shard ]);
        Alcotest.(check bool) "done flag" true e1.Joblog.e_done;
        Alcotest.(check bool) "fail flag" true e2.Joblog.e_failed;
        Alcotest.(check bool) "job 2 has no shards" true (e2.Joblog.e_shards = [])
      | es -> Alcotest.failf "expected 2 entries, got %d" (List.length es))

let test_joblog_torn_tail () =
  with_tmp (fun path ->
      Sys.remove path;
      let t, _ = Joblog.start ~path ~snapshot:true in
      Joblog.record_job t ~id:1 ~chunk:10 (sample_job None);
      Joblog.record_shard t ~id:1 sample_shard;
      Joblog.close t;
      (* simulate a SIGKILL mid-append: a torn, unterminated record *)
      let oc = open_out_gen [ Open_append ] 0o644 path in
      output_string oc "shard 1 LLFI all 20 10 123";
      close_out oc;
      match Joblog.load ~path ~snapshot:true with
      | [ e ] ->
        Alcotest.(check int) "torn shard line is skipped" 1
          (List.length e.Joblog.e_shards)
      | es -> Alcotest.failf "expected 1 entry, got %d" (List.length es))

let test_joblog_header_mismatch () =
  with_tmp (fun path ->
      Sys.remove path;
      let t, _ = Joblog.start ~path ~snapshot:true in
      Joblog.record_job t ~id:1 ~chunk:10 (sample_job None);
      Joblog.close t;
      match Joblog.load ~path ~snapshot:false with
      | _ -> Alcotest.fail "snapshot mismatch was accepted"
      | exception Invalid_argument _ -> ())

(* --- in-process service --- *)

let offline_csv (job : Wire.job) =
  let config =
    Plan.config_for ~base:Core.Campaign.default_config ~model:job.Wire.j_model
      ~trials:job.Wire.j_trials ~seed:job.Wire.j_seed
  in
  let w = Workloads.find_exn job.Wire.j_workload in
  let p = Core.Campaign.prepare config w in
  let cells =
    List.map
      (fun (tool, category) -> Core.Campaign.run_cell config p tool category)
      (Plan.cells job)
  in
  Core.Campaign.to_csv cells

let tmp_dir () =
  let d = Filename.temp_file "fi-serve" "" in
  Sys.remove d;
  Unix.mkdir d 0o700;
  d

let start_server config =
  let ready = Atomic.make false in
  let domain =
    Domain.spawn (fun () ->
        Server.run ~on_ready:(fun () -> Atomic.set ready true) config)
  in
  while not (Atomic.get ready) do
    Unix.sleepf 0.01
  done;
  domain

let test_served_equals_offline () =
  let dir = tmp_dir () in
  let socket = Filename.concat dir "s.sock" in
  let config =
    { (Server.default ~socket) with Server.pool_size = 2; chunk = Some 3 }
  in
  let domain = start_server config in
  let job =
    {
      Wire.j_workload = "mcf";
      j_tools = tools;
      j_categories = [ Core.Category.Arithmetic; Core.Category.Cast ];
      j_model = Core.Fault_model.Bitflip;
      j_trials = 10;
      j_seed = 5;
      j_out = None;
    }
  in
  let c = Client.connect (Client.Unix_sock socket) in
  let _server, pool = Client.hello c ~name:"test" in
  Alcotest.(check int) "pool size reported" 2 pool;
  (match Client.submit c job with
  | Error e -> Alcotest.failf "submit failed: %s" e
  | Ok r ->
    Alcotest.(check string) "served CSV equals offline campaign"
      (offline_csv job) r.Client.r_csv;
    (* resubmit: the cell cache must stream the identical result *)
    (match Client.submit c job with
    | Error e -> Alcotest.failf "resubmit failed: %s" e
    | Ok r2 ->
      Alcotest.(check string) "cached resubmission is identical"
        r.Client.r_csv r2.Client.r_csv;
      Alcotest.(check string) "digests agree" r.Client.r_digest
        r2.Client.r_digest));
  Client.shutdown c ~drain:true;
  Client.close c;
  let stats = Domain.join domain in
  Alcotest.(check int) "both submissions admitted" 2 stats.Server.admitted;
  Alcotest.(check int) "both completed" 2 stats.Server.completed;
  Alcotest.(check int) "none failed" 0 stats.Server.failed

let test_warm_shards_byte_identical () =
  (* Second job on an already-warm workload: the prepared structures,
     rejoin journals and per-domain runner caches are all reused, but
     the cells themselves re-execute (a different trials+seed misses
     the cell cache).  The streamed batches must remain byte-identical
     to an offline campaign with no service and no rejoin. *)
  let dir = tmp_dir () in
  let socket = Filename.concat dir "s.sock" in
  let config =
    { (Server.default ~socket) with Server.pool_size = 2; chunk = Some 4 }
  in
  let domain = start_server config in
  let job trials seed =
    {
      Wire.j_workload = "libquantum";
      j_tools = tools;
      j_categories = [ Core.Category.Load; Core.Category.Cmp ];
      (* a non-default model rides the whole serve path end to end *)
      j_model = Core.Fault_model.Stuck_at_1;
      j_trials = trials;
      j_seed = seed;
      j_out = None;
    }
  in
  let c = Client.connect (Client.Unix_sock socket) in
  let _server, _pool = Client.hello c ~name:"warm" in
  (match Client.submit c (job 8 1) with
  | Error e -> Alcotest.failf "cold submit failed: %s" e
  | Ok _ -> ());
  (match Client.submit c (job 14 9) with
  | Error e -> Alcotest.failf "warm submit failed: %s" e
  | Ok r ->
    Alcotest.(check string) "warm-service shards byte-identical to offline"
      (offline_csv (job 14 9))
      r.Client.r_csv);
  Client.shutdown c ~drain:true;
  Client.close c;
  let stats = Domain.join domain in
  Alcotest.(check int) "no failures" 0 stats.Server.failed

let test_invalid_job_rejected () =
  let dir = tmp_dir () in
  let socket = Filename.concat dir "s.sock" in
  let config = { (Server.default ~socket) with Server.pool_size = 1 } in
  let domain = start_server config in
  let c = Client.connect (Client.Unix_sock socket) in
  (match
     Client.submit c
       {
         Wire.j_workload = "no-such-workload";
         j_tools = tools;
         j_categories = [ Core.Category.All ];
         j_model = Core.Fault_model.Bitflip;
         j_trials = 1;
         j_seed = 0;
         j_out = None;
       }
   with
  | Ok _ -> Alcotest.fail "unknown workload was accepted"
  | Error m ->
    let mentions_workload =
      try
        ignore (Str.search_forward (Str.regexp_string "no-such-workload") m 0);
        true
      with Not_found -> false
    in
    Alcotest.(check bool) "error names the workload" true mentions_workload);
  Client.shutdown c ~drain:true;
  Client.close c;
  let stats = Domain.join domain in
  Alcotest.(check int) "rejected job is not admitted" 0 stats.Server.admitted

(* Satellite 6: a drain-shutdown racing an in-flight job must neither
   lose nor duplicate a verdict batch.  Client.submit's stream
   verification (exact tiling of every cell's trial range + CSV/digest
   re-derivation) is the detector; the small chunk forces many batches
   so the drain lands mid-stream. *)
let test_drain_no_loss_no_dup () =
  let dir = tmp_dir () in
  let socket = Filename.concat dir "s.sock" in
  let config =
    { (Server.default ~socket) with Server.pool_size = 2; chunk = Some 2 }
  in
  let domain = start_server config in
  let job =
    {
      Wire.j_workload = "mcf";
      j_tools = [ Core.Campaign.Llfi_tool ];
      j_categories = [ Core.Category.Arithmetic; Core.Category.Cmp ];
      j_model = Core.Fault_model.Bitflip;
      j_trials = 30;
      j_seed = 13;
      j_out = None;
    }
  in
  let c = Client.connect (Client.Unix_sock socket) in
  let shutter =
    Domain.spawn (fun () ->
        (* land the drain request while the job is mid-stream *)
        Unix.sleepf 0.05;
        let c2 = Client.connect (Client.Unix_sock socket) in
        Client.shutdown c2 ~drain:true;
        Client.close c2)
  in
  (match Client.submit c job with
  | Error e -> Alcotest.failf "drained job failed: %s" e
  | Ok r ->
    Alcotest.(check string) "drained job's CSV equals offline"
      (offline_csv job) r.Client.r_csv);
  Domain.join shutter;
  Client.close c;
  let stats = Domain.join domain in
  Alcotest.(check int) "in-flight job completed across drain" 1
    stats.Server.completed;
  Alcotest.(check int) "no failures" 0 stats.Server.failed

(* A journaled, unfinished job (client long gone) resumes headless on
   restart: only missing shards re-run, and the server-side output file
   is byte-identical to the offline campaign. *)
let test_journal_resume_headless () =
  let dir = tmp_dir () in
  let socket = Filename.concat dir "s.sock" in
  let journal = Filename.concat dir "j.log" in
  let out = Filename.concat dir "resumed.csv" in
  let chunk = 4 in
  let job =
    {
      Wire.j_workload = "mcf";
      j_tools = [ Core.Campaign.Pinfi_tool ];
      j_categories = [ Core.Category.Load ];
      (* a non-default model must survive the journal and resume under
         the same trial streams *)
      j_model = Core.Fault_model.Skip;
      j_trials = 12;
      j_seed = 3;
      j_out = Some out;
    }
  in
  (* forge the journal a SIGKILLed server would leave behind: the job
     admitted, exactly one shard checkpointed *)
  let config =
    Plan.config_for ~base:Core.Campaign.default_config ~model:job.Wire.j_model
      ~trials:job.Wire.j_trials ~seed:job.Wire.j_seed
  in
  let p = Core.Campaign.prepare config (Workloads.find_exn "mcf") in
  let first_shard =
    Core.Campaign.run_cell_range config p Core.Campaign.Pinfi_tool
      Core.Category.Load ~first:0 ~count:chunk
  in
  let t, _ = Joblog.start ~path:journal ~snapshot:true in
  Joblog.record_job t ~id:1 ~chunk job;
  Joblog.record_shard t ~id:1
    {
      Joblog.s_tool = Core.Campaign.Pinfi_tool;
      s_category = Core.Category.Load;
      s_first = 0;
      s_count = chunk;
      s_population = first_shard.Core.Campaign.c_population;
      s_tally = first_shard.Core.Campaign.c_tally;
    };
  Joblog.close t;
  let server_config =
    {
      (Server.default ~socket) with
      Server.pool_size = 2;
      chunk = Some chunk;
      journal = Some journal;
    }
  in
  let domain = start_server server_config in
  (* draining waits for the resumed headless job before Bye *)
  let c = Client.connect (Client.Unix_sock socket) in
  Client.shutdown c ~drain:true;
  Client.close c;
  let stats = Domain.join domain in
  Alcotest.(check int) "one job resumed" 1 stats.Server.resumed;
  Alcotest.(check int) "resumed job completed" 1 stats.Server.completed;
  let ic = open_in_bin out in
  let csv = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Alcotest.(check string) "resumed output equals offline campaign"
    (offline_csv job) csv;
  (* the journal now carries the terminal record: a second start resumes
     nothing *)
  match Joblog.load ~path:journal ~snapshot:true with
  | [ e ] ->
    Alcotest.(check bool) "journal records completion" true e.Joblog.e_done;
    Alcotest.(check bool) "only missing shards were journaled by the resume"
      true
      (List.length e.Joblog.e_shards = List.length (Plan.shards ~chunk ~trials:job.Wire.j_trials))
  | es -> Alcotest.failf "expected 1 journal entry, got %d" (List.length es)

let () =
  Alcotest.run "serve"
    [
      ( "codec",
        [
          QCheck_alcotest.to_alcotest test_client_roundtrip;
          QCheck_alcotest.to_alcotest test_server_roundtrip;
          QCheck_alcotest.to_alcotest test_frame_boundary;
          QCheck_alcotest.to_alcotest test_truncation;
          QCheck_alcotest.to_alcotest test_garbage_total;
          QCheck_alcotest.to_alcotest test_version_rejected;
          QCheck_alcotest.to_alcotest test_magic_rejected;
          QCheck_alcotest.to_alcotest test_model_name_roundtrip;
          ("wire protocol is v2", `Quick, test_wire_is_v2);
        ] );
      ( "planning",
        [
          QCheck_alcotest.to_alcotest test_shards_partition;
          ("default chunk bounds", `Quick, test_default_chunk);
        ] );
      ( "journal",
        [
          ("record round-trip", `Quick, test_joblog_roundtrip);
          ("torn tail is skipped", `Quick, test_joblog_torn_tail);
          ("header mismatch refused", `Quick, test_joblog_header_mismatch);
        ] );
      ( "service",
        [
          ("served CSV equals offline", `Slow, test_served_equals_offline);
          ( "warm shards byte-identical",
            `Slow,
            test_warm_shards_byte_identical );
          ("invalid job rejected", `Quick, test_invalid_job_rejected);
          ("drain loses and duplicates nothing", `Slow, test_drain_no_loss_no_dup);
          ("journal resume is headless and exact", `Slow, test_journal_resume_headless);
        ] );
    ]
