(* Tests for the telemetry subsystem (lib/obs): span nesting, the
   jobs-invariant canonical merge, histogram bucket arithmetic, and the
   run-manifest JSON round-trip. *)

let mcf = Workloads.find_exn "mcf"

(* Every test that enables telemetry must leave it off and empty: the
   tests in this file share the process-global tracer and registry. *)
let with_telemetry f =
  Obs.Trace.reset ();
  Obs.Metrics.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Trace.reset ();
      Obs.Metrics.reset ())
    f

(* --- Trace: span nesting --- *)

let test_span_disabled_is_transparent () =
  with_telemetry (fun () ->
      Alcotest.(check int) "span returns f's value" 42
        (Obs.Trace.span "unrecorded" (fun () -> 42));
      Alcotest.(check int) "nothing recorded while disabled" 0
        (List.length (Obs.Trace.forest ())))

let test_span_nesting () =
  with_telemetry (fun () ->
      Obs.Trace.enable ();
      Obs.Trace.span "outer" ~args:[ ("k", "v") ] (fun () ->
          Obs.Trace.span "first" (fun () -> ());
          Obs.Trace.span "second" (fun () ->
              Obs.Trace.span "inner" (fun () -> ())));
      Alcotest.(check string)
        "skeleton reflects nesting and execution order"
        "outer k=v\n  first\n  second\n    inner\n"
        (Obs.Trace.skeleton (Obs.Trace.forest ())))

let test_span_closes_on_exception () =
  with_telemetry (fun () ->
      Obs.Trace.enable ();
      (try
         Obs.Trace.span "root" (fun () ->
             Obs.Trace.span "thrower" (fun () -> failwith "boom"))
       with Failure _ -> ());
      Alcotest.(check string) "both spans closed despite the exception"
        "root\n  thrower\n"
        (Obs.Trace.skeleton (Obs.Trace.forest ())))

let test_span_durations_nest () =
  with_telemetry (fun () ->
      Obs.Trace.enable ();
      Obs.Trace.span "outer" (fun () ->
          Obs.Trace.span "inner" (fun () -> Unix.sleepf 0.002));
      match Obs.Trace.forest () with
      | [ { Obs.Trace.t_children = [ inner ]; _ } as outer ] ->
        Alcotest.(check bool) "child starts at or after parent" true
          (inner.Obs.Trace.t_start_ns >= outer.t_start_ns);
        Alcotest.(check bool) "child duration within parent's" true
          (inner.t_dur_ns <= outer.t_dur_ns)
      | _ -> Alcotest.fail "expected one root with one child")

(* --- Trace + Metrics: per-domain merge determinism --- *)

(* The mcf grid is 1 workload x 2 tools x 5 categories = 10 cells, so
   every jobs value up to 10 schedules whole cells and the canonical
   forest must be identical.  Deterministic metrics — the campaign and
   vm families — must merge to the same totals; scheduling-dependent
   ones (pool tasks, runner-cache hits) legitimately differ. *)
let campaign_run ~jobs =
  let config = { Core.Campaign.default_config with trials = 8 } in
  ignore (Engine.Scheduler.run ~jobs config [ mcf ]);
  let skel = Obs.Trace.skeleton (Obs.Trace.forest ()) in
  let deterministic =
    List.filter
      (fun (name, _) ->
        String.length name >= 3
        && (String.sub name 0 3 = "cam" || String.sub name 0 3 = "vm."))
      (Obs.Metrics.snapshot ())
  in
  (skel, deterministic)

let metric_value_pp =
  let pp fmt = function
    | Obs.Metrics.Count n -> Format.fprintf fmt "Count %d" n
    | Obs.Metrics.Histo { count; sum; buckets } ->
      Format.fprintf fmt "Histo{count=%d;sum=%d;buckets=%s}" count sum
        (String.concat ","
           (Array.to_list (Array.map string_of_int buckets)))
  in
  Alcotest.testable pp ( = )

let test_merge_jobs_invariant () =
  let run jobs =
    with_telemetry (fun () ->
        Obs.Trace.enable ();
        Obs.Metrics.enable ();
        campaign_run ~jobs)
  in
  let skel1, metrics1 = run 1 in
  let skel4, metrics4 = run 4 in
  Alcotest.(check bool) "forest is non-trivial" true
    (String.length skel1 > 100);
  Alcotest.(check string) "span skeleton identical for jobs=1 and jobs=4"
    skel1 skel4;
  Alcotest.(check (list (pair string metric_value_pp)))
    "deterministic metrics identical for jobs=1 and jobs=4" metrics1 metrics4

let test_snapshot_sorted_and_complete () =
  with_telemetry (fun () ->
      Obs.Metrics.enable ();
      let c = Obs.Metrics.counter "test.snapshot.counter" in
      let h = Obs.Metrics.histogram "test.snapshot.histogram" in
      Obs.Metrics.incr c;
      Obs.Metrics.incr ~by:2 c;
      Obs.Metrics.observe h 5;
      let snap = Obs.Metrics.snapshot () in
      let names = List.map fst snap in
      Alcotest.(check (list string)) "snapshot sorted by name"
        (List.sort compare names) names;
      (match List.assoc "test.snapshot.counter" snap with
      | Obs.Metrics.Count 3 -> ()
      | v ->
        Alcotest.failf "counter: expected Count 3, got %a"
          (Alcotest.pp metric_value_pp) v);
      match List.assoc "test.snapshot.histogram" snap with
      | Obs.Metrics.Histo { count = 1; sum = 5; buckets } ->
        Alcotest.(check int) "observation in bucket_of 5" 1
          buckets.(Obs.Metrics.Hist.bucket_of 5)
      | v ->
        Alcotest.failf "histogram: expected one observation of 5, got %a"
          (Alcotest.pp metric_value_pp) v)

(* --- Hist: bucket arithmetic (QCheck) --- *)

let hist_array =
  QCheck.(array_of_size Gen.(int_range 0 Obs.Metrics.Hist.buckets) (int_range 0 1000))

let qcheck_merge_associative =
  QCheck.Test.make ~count:200 ~name:"Hist.merge associative"
    QCheck.(triple hist_array hist_array hist_array)
    (fun (a, b, c) ->
      Obs.Metrics.Hist.(merge (merge a b) c = merge a (merge b c)))

let qcheck_merge_commutative =
  QCheck.Test.make ~count:200 ~name:"Hist.merge commutative"
    QCheck.(pair hist_array hist_array)
    (fun (a, b) -> Obs.Metrics.Hist.(merge a b = merge b a))

let qcheck_merge_identity =
  QCheck.Test.make ~count:200 ~name:"Hist.merge identity is [||]"
    hist_array
    (fun a -> Obs.Metrics.Hist.(merge a [||] = a && merge [||] a = a))

let qcheck_bucket_monotone =
  QCheck.Test.make ~count:500 ~name:"Hist.bucket_of monotone"
    QCheck.(pair int int)
    (fun (v, w) ->
      let v, w = (min v w, max v w) in
      Obs.Metrics.Hist.(bucket_of v <= bucket_of w))

let qcheck_bucket_bounds =
  QCheck.Test.make ~count:500 ~name:"Hist.lower_bound brackets bucket_of"
    QCheck.(int_range 0 max_int)
    (fun v ->
      let open Obs.Metrics.Hist in
      let b = bucket_of v in
      (* The upper bound saturates to max_int when 2^b is not
         representable; the bucket then absorbs up to max_int. *)
      let ub = if b + 1 >= buckets then max_int else lower_bound (b + 1) in
      0 <= b && b < buckets
      && lower_bound b <= v
      && (v < ub || ub = max_int))

(* --- Json + Manifest: round-trip and digest stability --- *)

let rec json_eq a b =
  match (a, b) with
  | Obs.Json.Float x, Obs.Json.Float y ->
    (* NaN round-trips are out of scope; bit-equality otherwise. *)
    Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
  | Obs.Json.List xs, Obs.Json.List ys ->
    List.length xs = List.length ys && List.for_all2 json_eq xs ys
  | Obs.Json.Obj xs, Obs.Json.Obj ys ->
    List.length xs = List.length ys
    && List.for_all2
         (fun (k, x) (l, y) -> String.equal k l && json_eq x y)
         xs ys
  | _ -> a = b

let test_json_round_trip () =
  let samples =
    [
      Obs.Json.Null;
      Obs.Json.Bool true;
      Obs.Json.Int (-42);
      Obs.Json.Int max_int;
      Obs.Json.Float 0.1;
      Obs.Json.Float 12.0;
      Obs.Json.Float 1.7976931348623157e308;
      Obs.Json.Str "plain";
      Obs.Json.Str "esc \" \\ \n \t \x01 end";
      Obs.Json.List [ Obs.Json.Int 1; Obs.Json.Str "two"; Obs.Json.Null ];
      Obs.Json.Obj
        [
          ("a", Obs.Json.Int 1);
          ("nested", Obs.Json.Obj [ ("b", Obs.Json.List []) ]);
        ];
    ]
  in
  List.iter
    (fun j ->
      let s = Obs.Json.to_string j in
      Alcotest.(check bool)
        (Printf.sprintf "of_string (to_string %s) round-trips" s)
        true
        (json_eq j (Obs.Json.of_string s)))
    samples

let test_manifest_round_trip () =
  with_telemetry (fun () ->
      let m = Obs.Manifest.create ~command:"test" in
      Obs.Manifest.set m "seed" (Obs.Json.Int 2014);
      Obs.Manifest.set m "snapshot" (Obs.Json.Bool true);
      ignore (Obs.Manifest.section m "work" (fun () -> 7));
      Obs.Manifest.add_digest m "csv" ~payload:"a,b\n1,2\n";
      let j = Obs.Manifest.to_json ~metrics:false m in
      let reparsed = Obs.Json.of_string (Obs.Json.to_string j) in
      Alcotest.(check bool) "manifest JSON round-trips" true
        (json_eq j reparsed);
      (match Obs.Json.member "config" reparsed with
      | Some (Obs.Json.Obj [ ("seed", Obs.Json.Int 2014); ("snapshot", Obs.Json.Bool true) ]) -> ()
      | _ -> Alcotest.fail "config lost its fields or their order");
      match Obs.Json.member "sections" reparsed with
      | Some (Obs.Json.List [ Obs.Json.Obj (("name", Obs.Json.Str "work") :: _) ]) -> ()
      | _ -> Alcotest.fail "sections lost the timed phase")

let test_digest_stability () =
  with_telemetry (fun () ->
      let digest_of payload =
        let m = Obs.Manifest.create ~command:"test" in
        Obs.Manifest.add_digest m "out" ~payload;
        match Obs.Json.member "digests" (Obs.Manifest.to_json ~metrics:false m) with
        | Some (Obs.Json.Obj [ ("out", Obs.Json.Str d) ]) -> d
        | _ -> Alcotest.fail "digest missing from manifest"
      in
      Alcotest.(check string) "equal payloads digest equally"
        (digest_of "w,tool,cat\n") (digest_of "w,tool,cat\n");
      Alcotest.(check bool) "different payloads digest differently" true
        (digest_of "a" <> digest_of "b");
      (* Pinned value: the digest is stdlib MD5 in hex, stable across
         runs and hosts — CI diffs it between --jobs 1 and --jobs 4. *)
      Alcotest.(check string) "known MD5 value"
        "0cc175b9c0f1b6a831c399e269772661" (digest_of "a"))

let () =
  Alcotest.run "obs"
    [
      ( "trace",
        [
          Alcotest.test_case "disabled span is transparent" `Quick
            test_span_disabled_is_transparent;
          Alcotest.test_case "nesting well-formed" `Quick test_span_nesting;
          Alcotest.test_case "closes on exception" `Quick
            test_span_closes_on_exception;
          Alcotest.test_case "durations nest" `Quick test_span_durations_nest;
        ] );
      ( "merge",
        [
          Alcotest.test_case "jobs=1 vs jobs=4 identical" `Slow
            test_merge_jobs_invariant;
          Alcotest.test_case "snapshot sorted and complete" `Quick
            test_snapshot_sorted_and_complete;
        ] );
      ( "hist",
        List.map QCheck_alcotest.to_alcotest
          [
            qcheck_merge_associative;
            qcheck_merge_commutative;
            qcheck_merge_identity;
            qcheck_bucket_monotone;
            qcheck_bucket_bounds;
          ] );
      ( "manifest",
        [
          Alcotest.test_case "json round-trip" `Quick test_json_round_trip;
          Alcotest.test_case "manifest round-trip" `Quick
            test_manifest_round_trip;
          Alcotest.test_case "digest stability" `Quick test_digest_stability;
        ] );
    ]
