(* Tests for lib/exhaust: exact (exhaustive + pruned) fault-space
   campaigns.

   The load-bearing properties:
   - pruning soundness: every fault the planner settles without
     executing ([Exhaust.fate] = Settled) yields exactly the predicted
     verdict when replayed straight-line;
   - exactness: a pruned cell's weighted tally equals the brute-force
     tally with pruning disabled, fault for fault;
   - determinism: the tally is byte-identical whatever the worker
     count, and the journal line round-trips. *)

let campaign_config = Core.Campaign.default_config
let tools = [ Core.Campaign.Llfi_tool; Core.Campaign.Pinfi_tool ]

(* Tiny generated workloads: terminating, input-free, identical golden
   output at both levels, a few hundred dynamic instructions — small
   enough to brute-force every (instance, bit) fault. *)
let tiny seed size =
  {
    Core.Workload.name = Printf.sprintf "tiny-%d" seed;
    suite = "test";
    description = "generated test program";
    paper_counterpart = "(none)";
    source = Fuzz.Gen.source ~seed ~size ();
    inputs = [||];
    input_name = "none";
  }

let tally_ints (t : Core.Verdict.tally) =
  [
    t.Core.Verdict.trials; t.benign; t.sdc; t.crash; t.hang; t.not_activated;
    t.not_injected;
  ]

(* --- exactness: pruned == brute force --- *)

let test_pruned_equals_brute_force () =
  let p = Core.Campaign.prepare campaign_config (tiny 7 5) in
  List.iter
    (fun tool ->
      let name = Core.Campaign.tool_name tool in
      let pruned =
        Exhaust.run_cell Exhaust.default_config p tool Core.Category.All
      in
      let brute =
        Exhaust.run_cell
          { Exhaust.default_config with prune = false }
          p tool Core.Category.All
      in
      Alcotest.(check int)
        (name ^ ": same enumerated space")
        brute.Core.Campaign.e_enumerated pruned.Core.Campaign.e_enumerated;
      Alcotest.(check (list int))
        (name ^ ": pruned tally equals brute force")
        (tally_ints brute.Core.Campaign.e_tally)
        (tally_ints pruned.Core.Campaign.e_tally);
      Alcotest.(check bool)
        (name ^ ": pruning executed fewer trials")
        true
        (pruned.Core.Campaign.e_executed <= brute.Core.Campaign.e_executed))
    tools

(* --- compiled execution tier: exact tallies are engine-independent ---

   The whole exhaustive pipeline (enumeration pre-pass, forced-bit
   replay of surviving faults, pruning verdicts against the golden
   run) through the closure-compiled tier must reproduce the
   interpreted tally fault for fault — and pruned must still equal
   brute force within the compiled engine. *)

let test_compiled_exact_identity () =
  let wl = tiny 7 5 in
  let p_i =
    Core.Campaign.prepare { campaign_config with compile = false } wl
  in
  let p_c = Core.Campaign.prepare { campaign_config with compile = true } wl in
  List.iter
    (fun tool ->
      let name = Core.Campaign.tool_name tool in
      let interp =
        Exhaust.run_cell Exhaust.default_config p_i tool Core.Category.All
      in
      let compiled =
        Exhaust.run_cell Exhaust.default_config p_c tool Core.Category.All
      in
      Alcotest.(check string)
        (name ^ ": compiled exact csv equals interpreted")
        (Core.Campaign.exact_to_csv [ interp ])
        (Core.Campaign.exact_to_csv [ compiled ]);
      let brute_c =
        Exhaust.run_cell
          { Exhaust.default_config with prune = false }
          p_c tool Core.Category.All
      in
      Alcotest.(check (list int))
        (name ^ ": compiled pruned tally equals compiled brute force")
        (tally_ints brute_c.Core.Campaign.e_tally)
        (tally_ints compiled.Core.Campaign.e_tally))
    tools

(* --- accounting invariants --- *)

let test_accounting () =
  let p = Core.Campaign.prepare campaign_config (tiny 11 6) in
  List.iter
    (fun tool ->
      let name = Core.Campaign.tool_name tool in
      let e = Exhaust.run_cell Exhaust.default_config p tool Core.Category.All in
      Alcotest.(check int)
        (name ^ ": weighted tally covers the whole space")
        (e.Core.Campaign.e_population * e.Core.Campaign.e_unit)
        e.Core.Campaign.e_tally.Core.Verdict.trials;
      Alcotest.(check int)
        (name ^ ": every fault is settled or executed")
        e.Core.Campaign.e_enumerated
        (e.Core.Campaign.e_pruned_dead + e.Core.Campaign.e_pruned_masked
        + e.Core.Campaign.e_pruned_equiv + e.Core.Campaign.e_executed);
      Alcotest.(check (float 0.0))
        (name ^ ": fully exact cell has no error bound")
        0.0 e.Core.Campaign.e_bound)
    tools

(* --- determinism across worker counts --- *)

let test_jobs_determinism () =
  let p = Core.Campaign.prepare campaign_config (tiny 23 6) in
  let pool = Engine.Pool.create ~size:3 () in
  Fun.protect
    ~finally:(fun () -> Engine.Pool.shutdown pool)
    (fun () ->
      List.iter
        (fun tool ->
          let seq =
            Exhaust.run_cell Exhaust.default_config p tool Core.Category.All
          in
          let par =
            Exhaust.run_cell ~pool Exhaust.default_config p tool
              Core.Category.All
          in
          Alcotest.(check string)
            (Core.Campaign.tool_name tool ^ ": csv identical across jobs")
            (Core.Campaign.exact_to_csv [ seq ])
            (Core.Campaign.exact_to_csv [ par ]))
        tools)

(* --- bounded residual sampling --- *)

let test_sample_bound () =
  let p = Core.Campaign.prepare campaign_config (tiny 31 6) in
  let tool = Core.Campaign.Llfi_tool in
  let exact = Exhaust.run_cell Exhaust.default_config p tool Core.Category.All in
  let k = 5 in
  let bounded =
    Exhaust.run_cell
      { Exhaust.default_config with sample_bound = k }
      p tool Core.Category.All
  in
  Alcotest.(check int) "sampling preserves the space weight"
    exact.Core.Campaign.e_tally.Core.Verdict.trials
    bounded.Core.Campaign.e_tally.Core.Verdict.trials;
  if exact.Core.Campaign.e_executed > k then begin
    Alcotest.(check bool) "executes at most the bound" true
      (bounded.Core.Campaign.e_executed <= k);
    Alcotest.(check bool) "carries a positive certified bound" true
      (bounded.Core.Campaign.e_bound > 0.0)
  end

(* --- pruning soundness: replay what the planner claims ---

   For sampled faults across generated programs, [Exhaust.fate]'s
   Settled verdicts must match a straight-line replay.  (A regression
   here once caught a real bug: grouping faults by non-golden funnel
   key is unsound, because the divergent path can re-read the corrupted
   register.) *)

let check_fates seed =
  let p = Core.Campaign.prepare campaign_config (tiny (1000 + seed) 4) in
  List.iter
    (fun tool ->
      let insts = Core.Campaign.enumerate p tool Core.Category.All in
      if Array.length insts > 0 then begin
        let r = Core.Campaign.runner p tool Core.Category.All in
        let golden = Core.Campaign.golden_output p tool in
        let verdict target bit =
          Core.Verdict.of_run ~golden_output:golden
            (Core.Campaign.inject_bit r ~target ~bit)
        in
        let budget = ref 150 in
        Array.iteri
          (fun target (inst : Vm.Fault_space.instance) ->
            let w = inst.Vm.Fault_space.width in
            let bits = List.sort_uniq compare [ 0; w / 2; w - 1 ] in
            List.iter
              (fun bit ->
                if !budget > 0 then begin
                  decr budget;
                  match Exhaust.fate tool inst ~bit with
                  | Exhaust.Settled v ->
                    Alcotest.(check string)
                      (Printf.sprintf "%s target=%d bit=%d settled"
                         (Core.Campaign.tool_name tool)
                         target bit)
                      (Core.Verdict.name v)
                      (Core.Verdict.name (verdict target bit))
                  | Exhaust.Execute -> ()
                end)
              bits)
          insts
      end)
    tools;
  true

let test_fate_soundness_property =
  QCheck.Test.make ~name:"pruned faults replay to their predicted verdict"
    ~count:6
    QCheck.(int_range 0 500)
    check_fates

(* --- journal round-trip --- *)

let test_xcell_roundtrip () =
  let e =
    {
      Core.Campaign.e_workload = "mcf";
      e_tool = Core.Campaign.Pinfi_tool;
      e_category = Core.Category.Cmp;
      e_model = Core.Fault_model.Bitflip;
      e_population = 3;
      e_enumerated = 10;
      e_pruned_dead = 1;
      e_pruned_masked = 2;
      e_pruned_equiv = 3;
      e_executed = 4;
      e_unit = 20160;
      e_tally =
        {
          Core.Verdict.trials = 60480;
          benign = 30000;
          sdc = 20000;
          crash = 10000;
          hang = 480;
          not_activated = 0;
          not_injected = 0;
        };
      e_bound = 0.012345678912345678;
    }
  in
  (match Engine.Journal.parse_xcell (Engine.Journal.xcell_line e) with
  | Some e' ->
    Alcotest.(check bool) "xcell line round-trips bit-exactly" true (e = e')
  | None -> Alcotest.fail "xcell line did not parse");
  Alcotest.(check (option unit)) "campaign cell lines are not xcells" None
    (Option.map ignore
       (Engine.Journal.parse_xcell "cell mcf LLFI all 1 2 3 4 5 6 7 8"))

let () =
  Alcotest.run "exhaust"
    [
      ( "exactness",
        [
          ("pruned equals brute force", `Slow, test_pruned_equals_brute_force);
          ( "compiled tier: exact tallies identical",
            `Slow,
            test_compiled_exact_identity );
          ("accounting invariants", `Slow, test_accounting);
        ] );
      ( "determinism",
        [
          ("pool vs sequential csv", `Slow, test_jobs_determinism);
          ("xcell journal round-trip", `Quick, test_xcell_roundtrip);
        ] );
      ( "sampling", [ ("bounded residual", `Slow, test_sample_bound) ] );
      ( "soundness", [ QCheck_alcotest.to_alcotest test_fate_soundness_property ] );
    ]
