(* Tests for Support: PRNG, bit manipulation, statistics, tables, words. *)

open Support

(* --- Rng --- *)

let test_rng_deterministic () =
  let a = Rng.of_int 42 and b = Rng.of_int 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_rng_bounds () =
  let rng = Rng.of_int 7 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 17 in
    if v < 0 || v >= 17 then Alcotest.failf "out of bounds: %d" v
  done

let test_rng_int64_bounds () =
  let rng = Rng.of_int 9 in
  for _ = 1 to 1000 do
    let v = Rng.int64_bound rng 1000L in
    if Int64.compare v 0L < 0 || Int64.compare v 1000L >= 0 then
      Alcotest.failf "out of bounds: %Ld" v
  done

let test_rng_split_independent () =
  let parent = Rng.of_int 3 in
  let child = Rng.split parent in
  let a = Rng.next_int64 parent and b = Rng.next_int64 child in
  Alcotest.(check bool) "streams differ" false (Int64.equal a b)

let test_rng_float_range () =
  let rng = Rng.of_int 11 in
  for _ = 1 to 10_000 do
    let f = Rng.float rng in
    if f < 0.0 || f >= 1.0 then Alcotest.failf "float out of range: %f" f
  done

let test_rng_uniformity =
  QCheck.Test.make ~name:"rng int is roughly uniform" ~count:20
    QCheck.(int_range 1 1000)
    (fun seed ->
      let rng = Rng.of_int seed in
      let buckets = Array.make 10 0 in
      let n = 10_000 in
      for _ = 1 to n do
        let v = Rng.int rng 10 in
        buckets.(v) <- buckets.(v) + 1
      done;
      Array.for_all (fun c -> c > n / 20 && c < n / 5) buckets)

let test_shuffle_is_permutation =
  QCheck.Test.make ~name:"shuffle preserves multiset" ~count:100
    QCheck.(pair small_int (list small_int))
    (fun (seed, xs) ->
      let rng = Rng.of_int seed in
      let a = Array.of_list xs in
      Rng.shuffle rng a;
      List.sort compare (Array.to_list a) = List.sort compare xs)

(* The O(1) skip must land on exactly the state n sequential draws
   reach — the engine's trial-chunking correctness rests on this. *)
let test_rng_advance_equals_draws =
  QCheck.Test.make ~name:"advance n = n sequential draws" ~count:200
    QCheck.(pair int (int_range 0 500))
    (fun (seed, n) ->
      let jumped = Rng.of_int seed and stepped = Rng.of_int seed in
      Rng.advance jumped n;
      for _ = 1 to n do
        ignore (Rng.next_int64 stepped)
      done;
      Int64.equal (Rng.next_int64 jumped) (Rng.next_int64 stepped))

(* --- Bits --- *)

let test_flip_int64_involution =
  QCheck.Test.make ~name:"flip_int64 is an involution" ~count:500
    QCheck.(pair int64 (int_range 0 63))
    (fun (v, bit) -> Int64.equal (Bits.flip_int64 (Bits.flip_int64 v bit) bit) v)

let test_flip_changes_exactly_one_bit =
  QCheck.Test.make ~name:"flip changes exactly one bit" ~count:500
    QCheck.(pair int64 (int_range 0 63))
    (fun (v, bit) ->
      Bits.popcount (Int64.logxor v (Bits.flip_int64 v bit)) = 1)

let test_flip_float_involution =
  QCheck.Test.make ~name:"flip_float is an involution" ~count:500
    QCheck.(pair float (int_range 0 63))
    (fun (v, bit) ->
      let flipped = Bits.flip_float (Bits.flip_float v bit) bit in
      Int64.equal (Int64.bits_of_float flipped) (Int64.bits_of_float v))

let test_sign_extend () =
  Alcotest.(check int64) "extend negative" (-1L) (Bits.sign_extend 0xffL 8);
  Alcotest.(check int64) "extend positive" 127L (Bits.sign_extend 0x7fL 8);
  Alcotest.(check int64) "width 64 identity" (-5L) (Bits.sign_extend (-5L) 64)

let test_mask_width () =
  Alcotest.(check int64) "mask 0" 0L (Bits.mask_width 0);
  Alcotest.(check int64) "mask 8" 0xffL (Bits.mask_width 8);
  Alcotest.(check int64) "mask 64" (-1L) (Bits.mask_width 64)

let test_i128_flip =
  QCheck.Test.make ~name:"i128 flip involution across halves" ~count:500
    QCheck.(pair (pair int64 int64) (int_range 0 127))
    (fun ((hi, lo), bit) ->
      let v = { Bits.hi; lo } in
      Bits.i128_equal (Bits.flip_i128 (Bits.flip_i128 v bit) bit) v)

let test_i128_halves () =
  let v = Bits.flip_i128 Bits.i128_zero 64 in
  Alcotest.(check int64) "bit 64 lands in hi" 1L v.Bits.hi;
  Alcotest.(check int64) "lo untouched" 0L v.Bits.lo

(* --- Word --- *)

let test_word_canon () =
  Alcotest.(check int) "i8 wrap" (-128) (Word.canon 8 128);
  Alcotest.(check int) "i8 id" 127 (Word.canon 8 127);
  Alcotest.(check int) "i1 true" 1 (Word.canon 1 3);
  Alcotest.(check int) "i1 false" 0 (Word.canon 1 2);
  Alcotest.(check int) "i32 wrap" (-0x8000_0000) (Word.canon 32 0x8000_0000);
  Alcotest.(check int) "full width id" max_int (Word.canon Word.width max_int)

let test_word_canon_idempotent =
  QCheck.Test.make ~name:"canon idempotent" ~count:500
    QCheck.(pair (int_range 1 63) int)
    (fun (w, v) -> Word.canon w (Word.canon w v) = Word.canon w v)

let test_word_unsigned () =
  Alcotest.(check int) "to_unsigned i8" 255 (Word.to_unsigned 8 (-1));
  Alcotest.(check bool) "ucompare max < -1" true (Word.ucompare max_int (-1) < 0);
  Alcotest.(check bool) "ucompare 0 < 1" true (Word.ucompare 0 1 < 0)

let test_word_shifts () =
  Alcotest.(check int) "shl small" 8 (Word.shl 1 3);
  Alcotest.(check int) "shl overflow" 0 (Word.shl 1 63);
  Alcotest.(check int) "lshr full width" 1 (Word.lshr Word.width min_int 62);
  Alcotest.(check int) "lshr narrow" 127 (Word.lshr 8 (-1) 1);
  Alcotest.(check int) "ashr" (-1) (Word.ashr (-2) 1);
  (* Shift amounts are masked to 6 bits, as on x86: 70 land 63 = 6. *)
  Alcotest.(check int) "ashr masks amount" (min_int asr 6) (Word.ashr min_int 70)

(* --- Stats --- *)

let test_proportion () =
  Alcotest.(check (float 1e-9)) "half" 0.5 (Stats.proportion ~successes:50 ~trials:100);
  Alcotest.(check (float 1e-9)) "empty" 0.0 (Stats.proportion ~successes:0 ~trials:0)

let test_z_score () =
  Alcotest.(check (float 1e-3)) "z(95%)" 1.96 (Stats.z_of_confidence 0.95);
  Alcotest.(check (float 1e-3)) "z(99%)" 2.576 (Stats.z_of_confidence 0.99)

let test_normal_interval () =
  let i = Stats.normal_interval ~successes:100 ~trials:1000 () in
  Alcotest.(check bool) "contains p" true (i.Stats.lower < 0.1 && 0.1 < i.Stats.upper);
  Alcotest.(check (float 1e-3)) "half width ~1.86%" 0.0186
    ((i.Stats.upper -. i.Stats.lower) /. 2.0)

let test_wilson_interval_never_degenerate () =
  let i = Stats.wilson_interval ~successes:0 ~trials:1000 () in
  Alcotest.(check bool) "upper > 0 at p=0" true (i.Stats.upper > 0.0);
  let j = Stats.wilson_interval ~successes:1000 ~trials:1000 () in
  Alcotest.(check bool) "lower < 1 at p=1" true (j.Stats.lower < 1.0)

let test_interval_bounds =
  QCheck.Test.make ~name:"intervals stay in [0,1] and contain p" ~count:500
    QCheck.(pair (int_range 0 100) (int_range 1 100))
    (fun (s, extra) ->
      let trials = s + extra in
      let p = Stats.proportion ~successes:s ~trials in
      let check (i : Stats.interval) =
        i.lower >= 0.0 && i.upper <= 1.0 && i.lower <= p +. 1e-9
        && p -. 1e-9 <= i.upper
      in
      check (Stats.normal_interval ~successes:s ~trials ())
      && check (Stats.wilson_interval ~successes:s ~trials ()))

let test_overlap () =
  let a = { Stats.lower = 0.1; upper = 0.3 } in
  let b = { Stats.lower = 0.25; upper = 0.5 } in
  let c = { Stats.lower = 0.31; upper = 0.4 } in
  Alcotest.(check bool) "overlapping" true (Stats.intervals_overlap a b);
  Alcotest.(check bool) "disjoint" false (Stats.intervals_overlap a c)

let test_mean_stddev () =
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "stddev" 1.0 (Stats.stddev [ 1.0; 2.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "stddev singleton" 0.0 (Stats.stddev [ 5.0 ])

(* --- Verdict tallies (merge algebra) --- *)

(* Scheduler chunk-merging reassembles a cell tally from parts in
   whatever order chunks finish, starting from a fresh tally — sound
   only because merge is a commutative monoid. *)
let tally_arb =
  QCheck.make
    ~print:(fun (t : Core.Verdict.tally) ->
      Printf.sprintf "{trials=%d benign=%d sdc=%d crash=%d hang=%d na=%d ni=%d}"
        t.trials t.benign t.sdc t.crash t.hang t.not_activated t.not_injected)
    QCheck.Gen.(
      map
        (fun (b, s, c, (h, na, ni)) ->
          {
            Core.Verdict.trials = b + s + c + h + na + ni;
            benign = b;
            sdc = s;
            crash = c;
            hang = h;
            not_activated = na;
            not_injected = ni;
          })
        (quad small_nat small_nat small_nat
           (triple small_nat small_nat small_nat)))

let test_merge_commutative =
  QCheck.Test.make ~name:"merge commutative" ~count:200
    QCheck.(pair tally_arb tally_arb)
    (fun (a, b) -> Core.Verdict.merge a b = Core.Verdict.merge b a)

let test_merge_associative =
  QCheck.Test.make ~name:"merge associative" ~count:200
    QCheck.(triple tally_arb tally_arb tally_arb)
    (fun (a, b, c) ->
      Core.Verdict.merge a (Core.Verdict.merge b c)
      = Core.Verdict.merge (Core.Verdict.merge a b) c)

let test_merge_identity =
  QCheck.Test.make ~name:"fresh tally is the merge identity" ~count:200
    tally_arb
    (fun a ->
      Core.Verdict.merge (Core.Verdict.fresh_tally ()) a = a
      && Core.Verdict.merge a (Core.Verdict.fresh_tally ()) = a)

(* --- Tabular --- *)

let test_table_render () =
  let t = Tabular.create ~headers:[ "name"; "value" ] in
  Tabular.add_row t [ "alpha"; "1" ];
  Tabular.add_row t [ "beta"; "22" ];
  let s = Tabular.render t in
  Alcotest.(check bool) "mentions alpha" true
    (String.length s > 0 && Option.is_some (String.index_opt s 'a'));
  (* All lines equally wide. *)
  let lines = String.split_on_char '\n' s |> List.filter (fun l -> l <> "") in
  let widths = List.map String.length lines in
  Alcotest.(check bool) "rectangular" true
    (List.for_all (fun w -> w = List.hd widths) widths)

let test_table_ragged_rows () =
  let t = Tabular.create ~headers:[ "a" ] in
  Tabular.add_row t [ "x"; "y"; "z" ];
  Tabular.add_separator t;
  Tabular.add_row t [];
  let s = Tabular.render t in
  let lines = String.split_on_char '\n' s |> List.filter (fun l -> l <> "") in
  let widths = List.map String.length lines in
  Alcotest.(check bool) "rectangular despite ragged input" true
    (List.for_all (fun w -> w = List.hd widths) widths)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "support"
    [
      ( "rng",
        [
          ("deterministic", `Quick, test_rng_deterministic);
          ("bounds", `Quick, test_rng_bounds);
          ("int64 bounds", `Quick, test_rng_int64_bounds);
          ("split independence", `Quick, test_rng_split_independent);
          ("float range", `Quick, test_rng_float_range);
        ]
        @ qsuite
            [
              test_rng_uniformity;
              test_shuffle_is_permutation;
              test_rng_advance_equals_draws;
            ] );
      ( "bits",
        [
          ("sign extend", `Quick, test_sign_extend);
          ("mask width", `Quick, test_mask_width);
          ("i128 halves", `Quick, test_i128_halves);
        ]
        @ qsuite
            [
              test_flip_int64_involution;
              test_flip_changes_exactly_one_bit;
              test_flip_float_involution;
              test_i128_flip;
            ] );
      ( "word",
        [
          ("canon", `Quick, test_word_canon);
          ("unsigned", `Quick, test_word_unsigned);
          ("shifts", `Quick, test_word_shifts);
        ]
        @ qsuite [ test_word_canon_idempotent ] );
      ( "stats",
        [
          ("proportion", `Quick, test_proportion);
          ("z score", `Quick, test_z_score);
          ("normal interval", `Quick, test_normal_interval);
          ("wilson never degenerate", `Quick, test_wilson_interval_never_degenerate);
          ("overlap", `Quick, test_overlap);
          ("mean stddev", `Quick, test_mean_stddev);
        ]
        @ qsuite [ test_interval_bounds ] );
      ( "verdict-merge",
        qsuite
          [
            test_merge_commutative;
            test_merge_associative;
            test_merge_identity;
          ] );
      ( "tabular",
        [
          ("render", `Quick, test_table_render);
          ("ragged rows", `Quick, test_table_ragged_rows);
        ] );
    ]
