(* Replay every checked-in corpus file through the full differential
   oracle.  The corpus holds minimized repros of previously planted (or
   found) miscompilations: each file must compile and agree across all
   pipeline stages on a healthy compiler, so a regression that
   re-introduces one of these bugs fails here with the offending stage
   named.

   Files land in test/corpus/ via
     fi fuzz --mutate NAME --corpus test/corpus
   (.c replays as a MiniC subject, .ll as textual IR). *)

(* dune runtest runs us inside test/; a bare [dune exec] runs from the
   project root. *)
let corpus_dir =
  if Sys.file_exists "corpus" then "corpus" else Filename.concat "test" "corpus"

let corpus_files () =
  Sys.readdir corpus_dir |> Array.to_list
  |> List.filter (fun f ->
         Filename.check_suffix f ".c" || Filename.check_suffix f ".ll")
  |> List.sort compare

let replay file () =
  match Fuzz.check_corpus_file (Filename.concat corpus_dir file) with
  | Ok stages ->
    Alcotest.(check bool)
      (Printf.sprintf "%s: compared every stage" file)
      true
      (stages = List.length Fuzz.Oracle.stage_names)
  | Error msg -> Alcotest.failf "%s: %s" file msg

let () =
  let files = corpus_files () in
  if files = [] then failwith "test/corpus is empty — corpus not checked in?";
  Alcotest.run "corpus"
    [ ("replay", List.map (fun f -> (f, `Quick, replay f)) files) ]
