(* Tests for the differential fuzzer: deterministic replay, generator
   well-formedness, pretty-printer round-trips, minimizer convergence
   on a planted bug, the Campaign.target_draw contract both injectors
   rely on, and coverage-report determinism across job counts. *)

let mcf = Workloads.find_exn "mcf"

(* --- deterministic replay --- *)

let test_replay_deterministic () =
  (* Same seed, same program text — for both generators. *)
  List.iter
    (fun seed ->
      Alcotest.(check string) "MiniC generator replays"
        (Fuzz.Gen.source ~seed ())
        (Fuzz.Gen.source ~seed ());
      Alcotest.(check string) "IR generator replays"
        (Fuzz.Gen_ir.text ~seed ())
        (Fuzz.Gen_ir.text ~seed ()))
    [ 0; 1; 17; 4096 ];
  (* Same seed+count, same campaign verdicts. *)
  let run () = Fuzz.campaign ~seed:0 ~count:24 () in
  Alcotest.(check string) "campaign summary replays"
    (Fuzz.render_summary (run ()))
    (Fuzz.render_summary (run ()))

(* --- generator well-formedness --- *)

(* Every generated program — through either grammar — must compile,
   verify, terminate, and agree with itself across all oracle stages.
   An [Invalid] here is a generator artifact; a [Diverged] on HEAD is a
   real compiler bug. *)
let test_generator_well_formed () =
  for seed = 0 to 59 do
    let kind, subject = Fuzz.subject_of_seed seed in
    let kname = match kind with `Minic -> "MiniC" | `Ir -> "IR" in
    match Fuzz.Oracle.run subject with
    | Fuzz.Oracle.Agree n ->
      Alcotest.(check bool)
        (Printf.sprintf "seed %d (%s) compares all stages" seed kname)
        true
        (n = List.length Fuzz.Oracle.stage_names)
    | Fuzz.Oracle.Invalid msg ->
      Alcotest.failf "seed %d (%s): generator artifact: %s" seed kname msg
    | Fuzz.Oracle.Diverged ds ->
      Alcotest.failf "seed %d (%s): diverges on HEAD at stage %s" seed kname
        (String.concat "," (List.map (fun d -> d.Fuzz.Oracle.d_stage) ds))
  done

(* --- pretty-printer round-trip --- *)

let test_pp_roundtrip_fixpoint () =
  for seed = 0 to 29 do
    let src = Fuzz.Gen.source ~seed () in
    (* [source] is already pp-of-AST, so one parse must reproduce it
       exactly: printing is a fixpoint. *)
    let reparsed = Fuzz.Pp.program (Minic.Parser.parse_program src) in
    Alcotest.(check string)
      (Printf.sprintf "seed %d: pp . parse is the identity on pp output" seed)
      src reparsed
  done

(* --- minimizer convergence --- *)

(* Seed 21 is the first MiniC program whose [opt] stage the planted
   add-to-sub mutation corrupts (scripts/ci.sh smokes the same pair via
   the CLI).  The minimizer must shrink it to a tiny repro that still
   shows the planted bug and is clean without it. *)
let test_minimizer_convergence () =
  let mutate = Fuzz.Mutate.Add_to_sub in
  let src = Fuzz.Gen.source ~seed:21 () in
  Alcotest.(check bool) "planted bug detected on seed 21" true
    (Fuzz.Oracle.diverges ~mutate (Fuzz.Oracle.Minic_src src));
  let keep p =
    let s = Fuzz.Oracle.Minic_src (Fuzz.Pp.program p) in
    Fuzz.Oracle.diverges ~mutate s
    && match Fuzz.Oracle.run s with Fuzz.Oracle.Agree _ -> true | _ -> false
  in
  let small, tests =
    Fuzz.Minimize.minimize ~keep (Minic.Parser.parse_program src)
  in
  let small_src = Fuzz.Pp.program small in
  Alcotest.(check bool) "minimizer did some work" true (tests > 0);
  let lines = Fuzz.Pp.line_count small_src in
  Alcotest.(check bool)
    (Printf.sprintf "repro is <= 20 lines (got %d)" lines)
    true (lines <= 20);
  Alcotest.(check bool) "repro still shows the planted bug" true
    (Fuzz.Oracle.diverges ~mutate (Fuzz.Oracle.Minic_src small_src));
  Alcotest.(check bool) "repro is clean without the mutation" true
    (match Fuzz.Oracle.run (Fuzz.Oracle.Minic_src small_src) with
    | Fuzz.Oracle.Agree _ -> true
    | _ -> false)

(* Every mutation must be detectable at all: somewhere in the first 120
   seeds the oracle flags it.  (Guards against a mutation rewriting
   itself into a no-op after an IR refactor.) *)
let test_all_mutations_detectable () =
  List.iter
    (fun m ->
      let found = ref false in
      let seed = ref 0 in
      while (not !found) && !seed < 120 do
        let _, subject = Fuzz.subject_of_seed !seed in
        if Fuzz.Oracle.diverges ~mutate:m subject then found := true;
        incr seed
      done;
      Alcotest.(check bool)
        (Printf.sprintf "mutation %s detected within 120 seeds"
           (Fuzz.Mutate.name m))
        true !found)
    Fuzz.Mutate.all

(* --- the Campaign.target_draw contract --- *)

let stats_key (s : Vm.Outcome.stats) =
  Printf.sprintf "%s|site=%d|note=%s|inj=%d|steps=%d"
    (Format.asprintf "%a" Vm.Outcome.pp s.Vm.Outcome.outcome)
    s.Vm.Outcome.fault_site s.Vm.Outcome.fault_note
    s.Vm.Outcome.injected_step s.Vm.Outcome.steps

(* The documented contract: the injection target is draw #0 of a
   trial's RNG stream, for BOTH injectors — the coverage report and
   the snapshot planner each re-derive trial targets on that basis.
   Checked behaviorally: (a) [plan_target] equals a bare [Rng.int
   population] on a copy of the stream, and (b) plan-then-[inject_at]
   is bit-identical to the direct [inject] on the same stream. *)
let test_target_draw_contract () =
  Alcotest.(check int) "Campaign.target_draw is 0" 0 Core.Campaign.target_draw;
  let config = Core.Campaign.default_config in
  let prep = Core.Campaign.prepare config mcf in
  let cat = Core.Category.Arithmetic in
  let master = Support.Rng.of_int 987654321 in
  (* LLFI *)
  let llfi = prep.Core.Campaign.llfi in
  let population = Core.Llfi.dynamic_count llfi cat in
  for trial = 0 to 4 do
    let rng = Support.Rng.split master in
    let expected = Support.Rng.int (Support.Rng.copy rng) population in
    Alcotest.(check int)
      (Printf.sprintf "llfi trial %d: target is draw #0" trial)
      expected
      (Core.Llfi.plan_target llfi cat (Support.Rng.copy rng));
    let direct = Core.Llfi.inject llfi cat (Support.Rng.copy rng) in
    let planned_rng = Support.Rng.copy rng in
    let target = Core.Llfi.plan_target llfi cat planned_rng in
    let planned =
      Core.Llfi.inject_at (Core.Llfi.runner llfi cat) ~target planned_rng
    in
    Alcotest.(check string)
      (Printf.sprintf "llfi trial %d: plan+inject_at == inject" trial)
      (stats_key direct) (stats_key planned)
  done;
  (* PINFI *)
  let pinfi = prep.Core.Campaign.pinfi in
  let population = Core.Pinfi.dynamic_count pinfi cat in
  for trial = 0 to 4 do
    let rng = Support.Rng.split master in
    let expected = Support.Rng.int (Support.Rng.copy rng) population in
    Alcotest.(check int)
      (Printf.sprintf "pinfi trial %d: target is draw #0" trial)
      expected
      (Core.Pinfi.plan_target pinfi cat (Support.Rng.copy rng));
    let direct = Core.Pinfi.inject pinfi cat (Support.Rng.copy rng) in
    let planned_rng = Support.Rng.copy rng in
    let target = Core.Pinfi.plan_target pinfi cat planned_rng in
    let planned =
      Core.Pinfi.inject_at (Core.Pinfi.runner pinfi cat) ~target planned_rng
    in
    Alcotest.(check string)
      (Printf.sprintf "pinfi trial %d: plan+inject_at == inject" trial)
      (stats_key direct) (stats_key planned)
  done

(* --- coverage determinism --- *)

let test_coverage_jobs_identical () =
  let measure jobs =
    Fuzz.Coverage.render
      (Fuzz.Coverage.measure ~jobs ~workloads:[ mcf ] ~trials:30 ~seed:5 ())
  in
  Alcotest.(check string) "jobs=1 and jobs=2 render byte-identically"
    (measure 1) (measure 2)

let () =
  Alcotest.run "fuzz"
    [
      ( "generator",
        [
          ("deterministic replay", `Quick, test_replay_deterministic);
          ("well-formed over 60 seeds", `Slow, test_generator_well_formed);
          ("pp round-trip fixpoint", `Quick, test_pp_roundtrip_fixpoint);
        ] );
      ( "minimizer",
        [
          ("converges on planted bug", `Slow, test_minimizer_convergence);
          ("all mutations detectable", `Slow, test_all_mutations_detectable);
        ] );
      ( "contract",
        [ ("target is rng draw #0", `Slow, test_target_draw_contract) ] );
      ( "coverage",
        [ ("jobs-independent report", `Slow, test_coverage_jobs_identical) ] );
    ]
