@gdata = global [16 x i64] [71629, 9389, 12176, 10550, 70350, 36927, 9813, 44478, 72431, 48454, 49203, 44383, 31168, 2266, 85594, 37170]

define i64 @mix(i64 %a.0, i64 %x.1) {
entry:
  %2 = and i64 %x.1, i64 15
  %3 = add i64 %2, i64 1
  %4 = udiv i64 %a.0, i64 %3
  %5 = srem i64 %x.1, i64 %3
  %6 = and i64 %x.1, i64 1
  %7 = icmp eq i64 %6, i64 1
  br i1 %7, %odd, %even
odd:
  %8 = and i64 %4, i64 770
  br %join
even:
  %9 = or i64 %5, i64 %a.0
  br %join
join:
  %10 = phi [ i64 %8, %odd ], [ i64 %9, %even ]
  %11 = lshr i64 %10, i64 0
  %12 = icmp uge i64 %11, i64 %a.0
  %13 = add i64 %10, i64 %x.1
  %14 = select i1 %12, i64 %11, i64 %13
  ret i64 %14
}

define i64 @main() {
entry:
  %0 = alloca [8 x i64]
  %1 = getelementptr [8 x i64]* %0, i64 0, i64 0
  store i64 57, i64* %1
  %2 = getelementptr [8 x i64]* %0, i64 0, i64 1
  store i64 62, i64* %2
  %3 = getelementptr [8 x i64]* %0, i64 0, i64 2
  store i64 43, i64* %3
  %4 = getelementptr [8 x i64]* %0, i64 0, i64 3
  store i64 36, i64* %4
  %5 = getelementptr [8 x i64]* %0, i64 0, i64 4
  store i64 14, i64* %5
  %6 = getelementptr [8 x i64]* %0, i64 0, i64 5
  store i64 61, i64* %6
  %7 = getelementptr [8 x i64]* %0, i64 0, i64 6
  store i64 24, i64* %7
  %8 = getelementptr [8 x i64]* %0, i64 0, i64 7
  store i64 14, i64* %8
  br %loop
loop:
  %i.9 = phi [ i64 0, %entry ], [ i64 %20, %loop ]
  %acc.10 = phi [ i64 140, %entry ], [ i64 %17, %loop ]
  %11 = getelementptr @gdata, i64 0, i64 %i.9
  %12 = load i64* %11
  %13 = call @mix(i64 %acc.10, i64 %12)
  %14 = trunc i64 %13 to i8
  %15 = mul i8 %14, i8 86
  %16 = sext i8 %15 to i64
  %17 = mul i64 %13, i64 %16
  %18 = and i64 %17, i64 7
  %19 = getelementptr [8 x i64]* %0, i64 0, i64 %18
  store i64 %17, i64* %19
  %20 = add i64 %i.9, i64 1
  %21 = icmp slt i64 %20, i64 16
  br i1 %21, %loop, %after
after:
  %22 = getelementptr [8 x i64]* %0, i64 0, i64 5
  %23 = ptrtoint i64* %22 to i64
  %24 = inttoptr i64 %23 to i64*
  %25 = load i64* %24
  %26 = xor i64 %17, i64 %25
  %27 = icmp slt i64 %26, i64 900
  %28 = xor i64 %26, i64 415
  %29 = select i1 %27, i64 %28, i64 %26
  %30 = icmp ne i64 %29, i64 397
  %31 = mul i64 %29, i64 383
  %32 = select i1 %30, i64 %31, i64 %29
  %33 = icmp ult i64 %32, i64 1961
  %34 = mul i64 %32, i64 69
  %35 = select i1 %33, i64 %34, i64 %32
  %36 = icmp slt i64 %35, i64 482
  %37 = add i64 %35, i64 232
  %38 = select i1 %36, i64 %37, i64 %35
  call.intrinsic @print_i64(i64 %38)
  call.intrinsic @print_newline()
  call.intrinsic @print_i64(i64 %25)
  call.intrinsic @print_newline()
  ret i64 0
}
