int acc = 0;

int main() {
  acc = (acc + ((int)3.8125));
  print_int(acc);
}
