int acc = 0;

int g0 = 51;

int main() {
  acc = (g0 == g0);
  print_int(acc);
}
