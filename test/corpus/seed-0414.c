int acc = 0;

int main() {
  acc = 2;
  print_int(acc);
}
