int g0 = 2;

int main() {
  if (g0) {
    print_newline();
  }
}
