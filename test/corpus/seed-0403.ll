@gdata = global [16 x i64] [81087, 16090, 75386, 87790, 2935, 47208, 31172, 57295, 51344, 3572, 45406, 71895, 36584, 66048, 75111, 27864]

define i64 @mix(i64 %a.0, i64 %x.1) {
entry:
  %2 = and i64 %x.1, i64 15
  %3 = add i64 %2, i64 1
  %4 = sdiv i64 %a.0, i64 %3
  %5 = srem i64 %x.1, i64 %3
  %6 = and i64 %x.1, i64 1
  %7 = icmp eq i64 %6, i64 1
  br i1 %7, %odd, %even
odd:
  %8 = mul i64 %4, i64 472
  br %join
even:
  %9 = and i64 %5, i64 %a.0
  br %join
join:
  %10 = phi [ i64 %8, %odd ], [ i64 %9, %even ]
  %11 = lshr i64 %10, i64 2
  %12 = icmp ult i64 %11, i64 %a.0
  %13 = and i64 %10, i64 %x.1
  %14 = select i1 %12, i64 %11, i64 %13
  ret i64 %14
}

define i64 @main() {
entry:
  %0 = alloca [8 x i64]
  %1 = getelementptr [8 x i64]* %0, i64 0, i64 0
  store i64 40, i64* %1
  %2 = getelementptr [8 x i64]* %0, i64 0, i64 1
  store i64 19, i64* %2
  %3 = getelementptr [8 x i64]* %0, i64 0, i64 2
  store i64 59, i64* %3
  %4 = getelementptr [8 x i64]* %0, i64 0, i64 3
  store i64 63, i64* %4
  %5 = getelementptr [8 x i64]* %0, i64 0, i64 4
  store i64 34, i64* %5
  %6 = getelementptr [8 x i64]* %0, i64 0, i64 5
  store i64 52, i64* %6
  %7 = getelementptr [8 x i64]* %0, i64 0, i64 6
  store i64 49, i64* %7
  %8 = getelementptr [8 x i64]* %0, i64 0, i64 7
  store i64 52, i64* %8
  br %loop
loop:
  %i.9 = phi [ i64 0, %entry ], [ i64 %20, %loop ]
  %acc.10 = phi [ i64 904, %entry ], [ i64 %17, %loop ]
  %11 = getelementptr @gdata, i64 0, i64 %i.9
  %12 = load i64* %11
  %13 = call @mix(i64 %acc.10, i64 %12)
  %14 = trunc i64 %13 to i8
  %15 = xor i8 %14, i8 -83
  %16 = sext i8 %15 to i64
  %17 = xor i64 %13, i64 %16
  %18 = and i64 %17, i64 7
  %19 = getelementptr [8 x i64]* %0, i64 0, i64 %18
  store i64 %17, i64* %19
  %20 = add i64 %i.9, i64 1
  %21 = icmp slt i64 %20, i64 16
  br i1 %21, %loop, %after
after:
  %22 = getelementptr [8 x i64]* %0, i64 0, i64 0
  %23 = ptrtoint i64* %22 to i64
  %24 = inttoptr i64 %23 to i64*
  %25 = load i64* %24
  %26 = sub i64 %17, i64 %25
  %27 = icmp slt i64 %26, i64 3782
  %28 = mul i64 %26, i64 405
  %29 = select i1 %27, i64 %28, i64 %26
  %30 = icmp uge i64 %29, i64 2906
  %31 = add i64 %29, i64 59
  %32 = select i1 %30, i64 %31, i64 %29
  call.intrinsic @print_i64(i64 %32)
  call.intrinsic @print_newline()
  call.intrinsic @print_i64(i64 %25)
  call.intrinsic @print_newline()
  ret i64 0
}
