int main() {
  int a11[8];
  for (int i12 = 0; 2; i12 = (i12 + 1)) {
    a11[i12] = i12;
  }
}
