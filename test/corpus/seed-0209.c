int acc = 0;

int main() {
  acc = (acc < 0);
  print_int(acc);
}
