int acc = 0;

int main() {
  acc = (acc + 1);
  print_int(acc);
}
