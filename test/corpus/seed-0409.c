int acc = 0;

int main() {
  acc = 1;
  print_int(acc);
}
