(* Differential tests for the closure-compiled execution tier.

   The tier's contract (Vm.Ir_exec.fast / Vm.X86_exec.fast) is
   bit-for-bit identity with the tree-walking interpreters: same output
   bytes, same trap tags, same step counts, same injection bookkeeping,
   same first-use classification, same fault-space enumeration — under
   every run mode, for every workload.  These tests hold the two
   engines against each other at increasing granularity: golden runs,
   individual injected trials, whole campaign CSVs, and the
   snapshot x rejoin x compile interplay. *)

let tools = [ Core.Campaign.Llfi_tool; Core.Campaign.Pinfi_tool ]

(* One string capturing everything a trial observes, so a divergence
   names the field that moved.  Trap payloads are included (same level,
   same engine semantics — unlike the cross-level fuzz oracle, payloads
   must match exactly here). *)
let stats_key (s : Vm.Outcome.stats) =
  let outcome =
    match s.Vm.Outcome.outcome with
    | Vm.Outcome.Finished out -> "finished(" ^ String.escaped out ^ ")"
    | Vm.Outcome.Crashed t -> Format.asprintf "crashed(%a)" Vm.Trap.pp t
    | Vm.Outcome.Hung -> "hung"
  in
  Printf.sprintf "%s|steps=%d|inj=%b|act=%b|note=%s|istep=%d|site=%d|use=%s"
    outcome s.Vm.Outcome.steps s.Vm.Outcome.injected s.Vm.Outcome.activated
    s.Vm.Outcome.fault_note s.Vm.Outcome.injected_step s.Vm.Outcome.fault_site
    (Vm.First_use.name s.Vm.Outcome.first_use)

(* Two preparations of the same workload, one per engine.  [compile] is
   the only difference, so every observable below must coincide. *)
let prepare_both (w : Core.Workload.t) =
  let prog = Opt.optimize (Minic.compile w.Core.Workload.source) in
  let asm = Backend.compile prog in
  let lc = Core.Llfi.prepare ~compile:true ~inputs:w.Core.Workload.inputs prog in
  let li = Core.Llfi.prepare ~compile:false ~inputs:w.Core.Workload.inputs prog in
  let pc = Core.Pinfi.prepare ~compile:true ~inputs:w.Core.Workload.inputs asm in
  let pi = Core.Pinfi.prepare ~compile:false ~inputs:w.Core.Workload.inputs asm in
  ((lc, li), (pc, pi))

(* --- golden + profile identity, all six workloads, both levels --- *)

let test_golden_identity () =
  List.iter
    (fun (w : Core.Workload.t) ->
      let (lc, li), (pc, pi) = prepare_both w in
      Alcotest.(check string)
        (w.name ^ ": llfi golden output")
        li.Core.Llfi.golden_output lc.Core.Llfi.golden_output;
      Alcotest.(check int)
        (w.name ^ ": llfi golden steps")
        li.Core.Llfi.golden_steps lc.Core.Llfi.golden_steps;
      Alcotest.(check
                  (list (pair string int)))
        (w.name ^ ": llfi dynamic profile")
        (List.map
           (fun (c, n) -> (Core.Category.name c, n))
           li.Core.Llfi.dynamic_counts)
        (List.map
           (fun (c, n) -> (Core.Category.name c, n))
           lc.Core.Llfi.dynamic_counts);
      Alcotest.(check string)
        (w.name ^ ": pinfi golden output")
        pi.Core.Pinfi.golden_output pc.Core.Pinfi.golden_output;
      Alcotest.(check int)
        (w.name ^ ": pinfi golden steps")
        pi.Core.Pinfi.golden_steps pc.Core.Pinfi.golden_steps;
      Alcotest.(check
                  (list (pair string int)))
        (w.name ^ ": pinfi dynamic profile")
        (List.map
           (fun (c, n) -> (Core.Category.name c, n))
           pi.Core.Pinfi.dynamic_counts)
        (List.map
           (fun (c, n) -> (Core.Category.name c, n))
           pc.Core.Pinfi.dynamic_counts))
    Workloads.all

(* --- injected trials, every workload x level x category --- *)

(* Same rng stream into both engines; [track_use] on so the first-use
   classification is part of the compared surface. *)
let test_injected_trials_identity () =
  let trials = 8 in
  List.iter
    (fun (w : Core.Workload.t) ->
      let (lc, li), (pc, pi) = prepare_both w in
      List.iter
        (fun cat ->
          let cname = Core.Category.name cat in
          if Core.Llfi.dynamic_count li cat > 0 then
            for trial = 0 to trials - 1 do
              let seed = Int64.of_int ((trial * 7919) + 13) in
              let a =
                Core.Llfi.inject ~track_use:true li cat
                  (Support.Rng.create seed)
              in
              let b =
                Core.Llfi.inject ~track_use:true lc cat
                  (Support.Rng.create seed)
              in
              Alcotest.(check string)
                (Printf.sprintf "%s llfi %s trial %d" w.name cname trial)
                (stats_key a) (stats_key b)
            done;
          if Core.Pinfi.dynamic_count pi cat > 0 then
            for trial = 0 to trials - 1 do
              let seed = Int64.of_int ((trial * 104729) + 17) in
              let a =
                Core.Pinfi.inject ~track_use:true pi cat
                  (Support.Rng.create seed)
              in
              let b =
                Core.Pinfi.inject ~track_use:true pc cat
                  (Support.Rng.create seed)
              in
              Alcotest.(check string)
                (Printf.sprintf "%s pinfi %s trial %d" w.name cname trial)
                (stats_key a) (stats_key b)
            done)
        Core.Category.all)
    Workloads.all

(* --- fault-space enumeration identity --- *)

let test_enumerate_identity () =
  let w = Workloads.find_exn "mcf" in
  let (lc, li), (pc, pi) = prepare_both w in
  List.iter
    (fun cat ->
      let cname = Core.Category.name cat in
      let la = Core.Llfi.enumerate li cat
      and lb = Core.Llfi.enumerate lc cat in
      Alcotest.(check bool)
        ("llfi " ^ cname ^ ": identical fault space")
        true (la = lb);
      let pa = Core.Pinfi.enumerate pi cat
      and pb = Core.Pinfi.enumerate pc cat in
      Alcotest.(check bool)
        ("pinfi " ^ cname ^ ": identical fault space")
        true (pa = pb))
    Core.Category.all

(* --- whole campaigns: compiled CSV byte-equal to interpreted --- *)

let test_campaign_csv_identity () =
  let cfg_c = { Core.Campaign.default_config with trials = 20 } in
  let cfg_i = { cfg_c with compile = false } in
  List.iter
    (fun (w : Core.Workload.t) ->
      let _, cells_c = Core.Campaign.run_workload cfg_c w in
      let _, cells_i = Core.Campaign.run_workload cfg_i w in
      Alcotest.(check string)
        (w.name ^ ": campaign CSV identical across engines")
        (Core.Campaign.to_csv cells_i)
        (Core.Campaign.to_csv cells_c))
    Workloads.all

(* --- snapshot x rejoin x compile interplay ---

   All four executor configurations (snapshot on/off x compile on/off)
   plus the rejoin-journal path must tally identically: the fast tier
   serves the ff machine's forward advance, the trial remainder, and
   the digest-maintaining journal recording, so each combination
   crosses a different set of engine code paths. *)

let test_snapshot_rejoin_interplay () =
  let w = Workloads.find_exn "libquantum" in
  let base = { Core.Campaign.default_config with trials = 25 } in
  let cfg snapshot compile = { base with snapshot; compile } in
  let reference =
    Core.Campaign.to_csv
      (snd (Core.Campaign.run_workload (cfg false false) w))
  in
  List.iter
    (fun (snapshot, compile) ->
      let csv =
        Core.Campaign.to_csv
          (snd (Core.Campaign.run_workload (cfg snapshot compile) w))
      in
      Alcotest.(check string)
        (Printf.sprintf "snapshot=%b compile=%b equals reference" snapshot
           compile)
        reference csv)
    [ (false, true); (true, false); (true, true) ];
  (* rejoin journals recorded and consumed through each engine *)
  let run_rejoin compile =
    let config = cfg true compile in
    let p = Core.Campaign.prepare config w in
    let rejoin = Core.Campaign.record_rejoin p in
    let cells =
      List.concat_map
        (fun tool ->
          List.map
            (fun cat ->
              let r = Core.Campaign.runner ~rejoin p tool cat in
              Core.Campaign.run_cell ~runner:r config p tool cat)
            Core.Category.all)
        tools
    in
    Core.Campaign.to_csv cells
  in
  Alcotest.(check string) "rejoin: interpreted equals reference" reference
    (run_rejoin false);
  Alcotest.(check string) "rejoin: compiled equals reference" reference
    (run_rejoin true)

let () =
  Alcotest.run "compile"
    [
      ( "golden",
        [
          ("golden + profile identity, 6 workloads", `Quick, test_golden_identity);
        ] );
      ( "trials",
        [
          ( "injected trials identical, all cells",
            `Slow,
            test_injected_trials_identity );
          ("fault-space enumeration identical", `Quick, test_enumerate_identity);
        ] );
      ( "campaign",
        [
          ("campaign CSVs byte-equal, 6 workloads", `Slow, test_campaign_csv_identity);
          ( "snapshot x rejoin x compile interplay",
            `Slow,
            test_snapshot_rejoin_interplay );
        ] );
    ]
