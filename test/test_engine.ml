(* Tests for the execution engine: the domain pool, the jobs=1 vs
   jobs=N determinism guarantee, and journal checkpoint/resume. *)

let mcf = Workloads.find_exn "mcf"
let libquantum = Workloads.find_exn "libquantum"

let small_config = { Core.Campaign.default_config with trials = 12 }

(* --- Pool --- *)

let test_pool_map_order () =
  let pool = Engine.Pool.create ~size:4 () in
  Fun.protect
    ~finally:(fun () -> Engine.Pool.shutdown pool)
    (fun () ->
      let input = Array.init 32 Fun.id in
      (* Early tasks sleep so later ones finish first: order of the
         result array must follow submission, not completion. *)
      let out =
        Engine.Pool.map pool
          (fun i ->
            if i < 8 then Unix.sleepf 0.005;
            i * i)
          input
      in
      Alcotest.(check (array int)) "squares in input order"
        (Array.map (fun i -> i * i) input)
        out)

let test_pool_exception_propagates () =
  let pool = Engine.Pool.create ~size:3 () in
  Fun.protect
    ~finally:(fun () -> Engine.Pool.shutdown pool)
    (fun () ->
      let ran = Atomic.make 0 in
      (match
         Engine.Pool.map pool
           (fun i ->
             Atomic.incr ran;
             if i = 5 then failwith "task 5 exploded";
             i)
           (Array.init 16 Fun.id)
       with
      | _ -> Alcotest.fail "expected the task exception to re-raise"
      | exception Failure msg ->
        Alcotest.(check string) "task error surfaces" "task 5 exploded" msg);
      (* All tasks still ran to completion before the re-raise... *)
      Alcotest.(check int) "no task dropped" 16 (Atomic.get ran);
      (* ...and the pool survives for further use. *)
      let out = Engine.Pool.map pool (fun i -> i + 1) [| 1; 2; 3 |] in
      Alcotest.(check (array int)) "pool usable after error" [| 2; 3; 4 |] out)

let test_pool_shutdown () =
  let pool = Engine.Pool.create ~size:2 () in
  let counter = Atomic.make 0 in
  for _ = 1 to 50 do
    Engine.Pool.submit pool (fun () -> Atomic.incr counter)
  done;
  Engine.Pool.shutdown pool;
  Alcotest.(check int) "shutdown drains the queue" 50 (Atomic.get counter);
  Engine.Pool.shutdown pool;  (* idempotent *)
  (match Engine.Pool.submit pool (fun () -> ()) with
  | () -> Alcotest.fail "submit after shutdown must raise"
  | exception Invalid_argument _ -> ());
  Alcotest.(check int) "size" 2 (Engine.Pool.size pool)

(* --- Determinism: jobs=1 vs jobs=N --- *)

let test_jobs_determinism () =
  let workloads = [ mcf; libquantum ] in
  let seq = Core.Campaign.run_all small_config workloads in
  let par = Engine.Scheduler.run ~jobs:4 small_config workloads in
  Alcotest.(check string) "csv identical to sequential runner"
    (Core.Campaign.to_csv seq)
    (Core.Campaign.to_csv par.Engine.Scheduler.cells)

let test_chunked_cell_determinism () =
  (* One cell, four domains: the scheduler splits it into trial ranges;
     the merged tally must equal the straight-line run. *)
  let p = Core.Campaign.prepare small_config mcf in
  let seq =
    Core.Campaign.run_cell small_config p Core.Campaign.Llfi_tool
      Core.Category.Load
  in
  let par =
    Engine.Scheduler.run ~jobs:4 ~tools:[ Core.Campaign.Llfi_tool ]
      ~categories:[ Core.Category.Load ] small_config [ mcf ]
  in
  Alcotest.(check string) "chunked cell csv"
    (Core.Campaign.to_csv [ seq ])
    (Core.Campaign.to_csv par.Engine.Scheduler.cells)

let test_explicit_chunk_sizes () =
  (* Any chunk size must give the same answer. *)
  let baseline =
    Engine.Scheduler.run ~jobs:1 small_config [ libquantum ]
  in
  List.iter
    (fun chunk ->
      let r = Engine.Scheduler.run ~jobs:2 ~chunk small_config [ libquantum ] in
      Alcotest.(check string)
        (Printf.sprintf "chunk=%d" chunk)
        (Core.Campaign.to_csv baseline.Engine.Scheduler.cells)
        (Core.Campaign.to_csv r.Engine.Scheduler.cells))
    [ 1; 5; 7; 100 ]

(* --- Batch planning --- *)

let test_ranges_exact_cover () =
  List.iter
    (fun (chunk, trials) ->
      let rs = Engine.Scheduler.ranges ~chunk trials in
      let next =
        List.fold_left
          (fun expect (first, count) ->
            Alcotest.(check int) "ranges are contiguous and in order" expect
              first;
            Alcotest.(check bool) "count non-negative" true (count >= 0);
            (match chunk with
            | Some c ->
              Alcotest.(check bool) "count within chunk" true (count <= c)
            | None -> ());
            first + count)
          0 rs
      in
      Alcotest.(check int) "every trial covered exactly once" trials next;
      if trials = 0 then
        Alcotest.(check int) "empty cell still yields one range" 1
          (List.length rs))
    [
      (None, 0);
      (None, 1);
      (None, 17);
      (Some 1, 7);
      (Some 3, 7);
      (Some 7, 7);
      (Some 8, 7);
      (Some 5, 0);
      (Some 97, 96);
      (Some 97, 97);
      (Some 97, 98);
    ]

let test_adaptive_chunk_covers =
  QCheck.Test.make
    ~name:"adaptive batching covers every trial exactly once" ~count:500
    QCheck.(triple (int_range 1 64) (int_range 0 64) (int_range 0 500))
    (fun (jobs, cells, trials) ->
      let chunk = Engine.Scheduler.adaptive_chunk ~jobs ~cells ~trials in
      let rs = Engine.Scheduler.ranges ~chunk trials in
      let rec contiguous expect = function
        | [] -> expect = trials
        | (first, count) :: tl ->
          first = expect && count >= 0 && contiguous (first + count) tl
      in
      let shape =
        match chunk with
        | None -> true
        | Some c ->
          (* Splitting only happens on small grids, never below the
             8-trial floor, and never into a single whole-cell chunk. *)
          c >= 8 && c < trials && jobs > 1 && cells > 0 && cells < 2 * jobs
      in
      contiguous 0 rs && shape)

(* QCheck: the scheduler's chunk-reassembly is only sound because tally
   merging is associative (and starts from a zero tally) — any chunking
   of a cell's trials folds to the same totals.  Check that algebra on
   arbitrary tallies. *)
let tally_arbitrary =
  let open QCheck.Gen in
  let gen =
    map
      (fun l ->
        match l with
        | [ a; b; c; d; e; f ] ->
          {
            Core.Verdict.trials = a + b + c + d + e + f;
            benign = a;
            sdc = b;
            crash = c;
            hang = d;
            not_activated = e;
            not_injected = f;
          }
        | _ -> assert false)
      (flatten_l (List.init 6 (fun _ -> small_nat)))
  in
  let print (t : Core.Verdict.tally) =
    Printf.sprintf "{trials=%d benign=%d sdc=%d crash=%d hang=%d na=%d ni=%d}"
      t.trials t.benign t.sdc t.crash t.hang t.not_activated t.not_injected
  in
  QCheck.make ~print gen

let tally_equal (a : Core.Verdict.tally) (b : Core.Verdict.tally) =
  a.trials = b.trials && a.benign = b.benign && a.sdc = b.sdc
  && a.crash = b.crash && a.hang = b.hang
  && a.not_activated = b.not_activated
  && a.not_injected = b.not_injected

let test_merge_associative_property =
  QCheck.Test.make ~name:"Verdict.merge is associative and commutative"
    ~count:300
    (QCheck.triple tally_arbitrary tally_arbitrary tally_arbitrary)
    (fun (a, b, c) ->
      let open Core.Verdict in
      tally_equal (merge a (merge b c)) (merge (merge a b) c)
      && tally_equal (merge a b) (merge b a)
      && tally_equal (merge a (fresh_tally ())) a)

(* The coordinator drains per-worker completion buffers in whatever
   order subtasks happen to finish; correctness relies on the fold of
   partial tallies being permutation-invariant.  Model arbitrary
   arrival orders directly. *)
let test_drain_order_insensitive =
  QCheck.Test.make ~name:"buffer drain order cannot change a cell tally"
    ~count:300
    QCheck.(
      pair (list_of_size Gen.(int_range 1 8) tally_arbitrary) (int_bound 1000))
    (fun (parts, salt) ->
      let arr = Array.of_list parts in
      let n = Array.length arr in
      let r = ref (salt + 1) in
      for i = n - 1 downto 1 do
        r := ((!r * 48271) + 13) land 0xFFFF;
        let j = !r mod (i + 1) in
        let t = arr.(i) in
        arr.(i) <- arr.(j);
        arr.(j) <- t
      done;
      let fold l =
        List.fold_left Core.Verdict.merge (Core.Verdict.fresh_tally ()) l
      in
      tally_equal (fold parts) (fold (Array.to_list arr)))

(* --- Journal --- *)

let with_temp_file f =
  let path = Filename.temp_file "fi_journal" ".log" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

(* The grid Scheduler.run derives for a default-tools, all-categories
   invocation over [workloads]. *)
let grid_for workloads =
  Engine.Journal.grid
    ~workloads:(List.map (fun (w : Core.Workload.t) -> w.name) workloads)
    ~tools:[ Core.Campaign.Llfi_tool; Core.Campaign.Pinfi_tool ]
    ~categories:Core.Category.all

let test_journal_roundtrip () =
  with_temp_file (fun path ->
      let run = Engine.Scheduler.run ~journal:path small_config [ libquantum ] in
      let cells = run.Engine.Scheduler.cells in
      (* Every cell round-trips through its line format... *)
      List.iter
        (fun cell ->
          match Engine.Journal.parse_cell (Engine.Journal.cell_line cell) with
          | Some cell' ->
            Alcotest.(check string) "roundtrip"
              (Core.Campaign.to_csv [ cell ])
              (Core.Campaign.to_csv [ cell' ])
          | None -> Alcotest.fail "cell line did not parse back")
        cells;
      (* ...and the journal file holds the whole campaign. *)
      let grid = grid_for [ libquantum ] in
      let loaded = Engine.Journal.load ~path ~grid small_config in
      Alcotest.(check int) "all cells journaled" (List.length cells)
        (List.length loaded);
      (* A garbage/truncated trailing line is ignored on load. *)
      let oc = open_out_gen [ Open_append ] 0o644 path in
      output_string oc "cell mcf LLFI load 12 tru";
      close_out oc;
      Alcotest.(check int) "truncated tail skipped" (List.length cells)
        (List.length (Engine.Journal.load ~path ~grid small_config));
      (* A journal for another config is rejected. *)
      match
        Engine.Journal.load ~path ~grid { small_config with seed = 999 }
      with
      | _ -> Alcotest.fail "mismatched header must be rejected"
      | exception Invalid_argument _ -> ())

(* Regression: --resume against a journal recorded for a different cell
   grid (here: another workload set) must be refused with an error that
   names both invocations, not silently mix tallies. *)
let test_journal_grid_mismatch_refused () =
  with_temp_file (fun path ->
      ignore (Engine.Scheduler.run ~journal:path small_config [ libquantum ]);
      (match
         Engine.Scheduler.run ~journal:path ~resume:true small_config [ mcf ]
       with
      | _ -> Alcotest.fail "resume with a different workload grid must raise"
      | exception Invalid_argument msg ->
        let mentions needle =
          let n = String.length needle and h = String.length msg in
          let rec at i =
            i + n <= h && (String.sub msg i n = needle || at (i + 1))
          in
          at 0
        in
        Alcotest.(check bool) "error names the grids" true
          (mentions "libquantum" && mentions "mcf"));
      (* Same workloads but a restricted category grid: also refused. *)
      match
        Engine.Scheduler.run ~journal:path ~resume:true
          ~categories:[ Core.Category.Load ] small_config [ libquantum ]
      with
      | _ -> Alcotest.fail "resume with a different category grid must raise"
      | exception Invalid_argument _ -> ())

let test_journal_resume_skips_completed () =
  with_temp_file (fun path ->
      let full = Engine.Scheduler.run ~journal:path small_config [ mcf ] in
      let lines = In_channel.with_open_text path In_channel.input_lines in
      (* Simulate a run killed after three cells: header + 3 records. *)
      let truncated = List.filteri (fun i _ -> i < 4) lines in
      (* Poison the surviving tallies so a re-run of those cells would be
         detectable: resume must carry these through verbatim. *)
      let poisoned =
        List.map
          (fun line ->
            match Engine.Journal.parse_cell line with
            | None -> line  (* header *)
            | Some cell ->
              Engine.Journal.cell_line
                {
                  cell with
                  c_tally =
                    { cell.c_tally with Core.Verdict.benign = 4242 };
                })
          truncated
      in
      Out_channel.with_open_text path (fun oc ->
          List.iter (fun l -> Printf.fprintf oc "%s\n" l) poisoned);
      let resumed =
        Engine.Scheduler.run ~jobs:2 ~journal:path ~resume:true small_config
          [ mcf ]
      in
      Alcotest.(check int) "three cells restored, not re-run" 3
        resumed.Engine.Scheduler.resumed;
      let poison_seen =
        List.filter
          (fun (c : Core.Campaign.cell) ->
            c.c_tally.Core.Verdict.benign = 4242)
          resumed.Engine.Scheduler.cells
      in
      Alcotest.(check int) "journaled tallies used verbatim" 3
        (List.length poison_seen);
      (* The cells that were NOT journaled match the uninterrupted run. *)
      List.iteri
        (fun i (cell : Core.Campaign.cell) ->
          if i >= 3 then
            Alcotest.(check string)
              (Printf.sprintf "cell %d recomputed identically" i)
              (Core.Campaign.to_csv [ List.nth full.Engine.Scheduler.cells i ])
              (Core.Campaign.to_csv [ cell ]))
        resumed.Engine.Scheduler.cells;
      (* After the resumed run the journal is complete: resuming again
         runs nothing. *)
      let again =
        Engine.Scheduler.run ~journal:path ~resume:true small_config [ mcf ]
      in
      Alcotest.(check int) "second resume re-runs nothing" 10
        again.Engine.Scheduler.resumed)

let test_resume_from_fixed_chunk_journal () =
  (* Journals written under an explicit (old-style fixed) chunk size
     carry the same per-cell records as adaptive batching produces: a
     resume under the adaptive default must accept them verbatim. *)
  with_temp_file (fun path ->
      let fixed =
        Engine.Scheduler.run ~jobs:2 ~chunk:5 ~journal:path small_config
          [ mcf ]
      in
      let resumed =
        Engine.Scheduler.run ~journal:path ~resume:true small_config [ mcf ]
      in
      Alcotest.(check int) "every cell restored from the fixed-chunk journal"
        10 resumed.Engine.Scheduler.resumed;
      Alcotest.(check string) "csv identical across chunking policies"
        (Core.Campaign.to_csv fixed.Engine.Scheduler.cells)
        (Core.Campaign.to_csv resumed.Engine.Scheduler.cells))

(* --- Rejoin --- *)

(* The golden-reconvergence early exit must be invisible in results:
   a runner armed with rejoin journals yields byte-identical cells for
   every tool and category. *)
let test_rejoin_identity () =
  let config = { Core.Campaign.default_config with trials = 24 } in
  List.iter
    (fun (w : Core.Workload.t) ->
      let p = Core.Campaign.prepare config w in
      let rejoin = Core.Campaign.record_rejoin p in
      List.iter
        (fun tool ->
          List.iter
            (fun cat ->
              let base = Core.Campaign.run_cell config p tool cat in
              let r = Core.Campaign.runner ~rejoin p tool cat in
              let rej = Core.Campaign.run_cell ~runner:r config p tool cat in
              Alcotest.(check string)
                (Printf.sprintf "%s/%s/%s" w.name
                   (Core.Campaign.tool_name tool)
                   (Core.Category.name cat))
                (Core.Campaign.to_csv [ base ])
                (Core.Campaign.to_csv [ rej ]))
            Core.Category.all)
        [ Core.Campaign.Llfi_tool; Core.Campaign.Pinfi_tool ])
    [ mcf; libquantum ]

let () =
  Alcotest.run "engine"
    [
      ( "pool",
        [
          ("map preserves order", `Quick, test_pool_map_order);
          ("exception propagation", `Quick, test_pool_exception_propagates);
          ("shutdown", `Quick, test_pool_shutdown);
        ] );
      ( "planning",
        [
          ("ranges cover exactly once", `Quick, test_ranges_exact_cover);
          QCheck_alcotest.to_alcotest test_adaptive_chunk_covers;
        ] );
      ( "determinism",
        [
          ("jobs=1 vs jobs=4 csv", `Slow, test_jobs_determinism);
          ("chunked single cell", `Slow, test_chunked_cell_determinism);
          ("explicit chunk sizes", `Slow, test_explicit_chunk_sizes);
          QCheck_alcotest.to_alcotest test_merge_associative_property;
          QCheck_alcotest.to_alcotest test_drain_order_insensitive;
        ] );
      ( "rejoin",
        [ ("rejoin keeps cells byte-identical", `Slow, test_rejoin_identity) ] );
      ( "journal",
        [
          ("roundtrip + header check", `Slow, test_journal_roundtrip);
          ("resume skips completed", `Slow, test_journal_resume_skips_completed);
          ("grid mismatch refused", `Slow, test_journal_grid_mismatch_refused);
          ( "resume from fixed-chunk journal",
            `Slow,
            test_resume_from_fixed_chunk_journal );
        ] );
    ]
