(* Tests for the sparse paged memory model: mapping, traps, word
   round-trips, the demand-mapped stack and the chunked heap arena. *)

open Vm

let test_unmapped_traps () =
  let mem = Memory.create () in
  (try
     ignore (Memory.read_u8 mem 0x1234);
     Alcotest.fail "read of unmapped address did not trap"
   with Trap.Trap (Trap.Unmapped_read 0x1234) -> ());
  try
    Memory.write_u8 mem 0x1234 7;
    Alcotest.fail "write to unmapped address did not trap"
  with Trap.Trap (Trap.Unmapped_write 0x1234) -> ()

let test_negative_address_traps () =
  let mem = Memory.create () in
  try
    ignore (Memory.read_u8 mem (-8));
    Alcotest.fail "negative address did not trap"
  with Trap.Trap (Trap.Unmapped_read _) -> ()

let test_byte_roundtrip () =
  let mem = Memory.create () in
  Memory.map_region mem ~addr:Memory.globals_base ~len:64;
  for k = 0 to 63 do
    Memory.write_u8 mem (Memory.globals_base + k) (k * 5)
  done;
  for k = 0 to 63 do
    Alcotest.(check int) "byte" (k * 5 land 0xff)
      (Memory.read_u8 mem (Memory.globals_base + k))
  done

let test_word_roundtrip =
  QCheck.Test.make ~name:"63-bit word round-trips through memory" ~count:500
    QCheck.int
    (fun v ->
      let mem = Memory.create () in
      Memory.map_region mem ~addr:Memory.globals_base ~len:16;
      Memory.write_word mem Memory.globals_base v;
      Memory.read_word mem Memory.globals_base = v)

let test_f64_roundtrip =
  QCheck.Test.make ~name:"f64 round-trips bit-exactly" ~count:500 QCheck.float
    (fun v ->
      let mem = Memory.create () in
      Memory.map_region mem ~addr:Memory.globals_base ~len:16;
      Memory.write_f64 mem Memory.globals_base v;
      Int64.equal
        (Int64.bits_of_float (Memory.read_f64 mem Memory.globals_base))
        (Int64.bits_of_float v))

let test_cross_page_access () =
  let mem = Memory.create () in
  let boundary = Memory.globals_base + Memory.page_size in
  Memory.map_region mem ~addr:(boundary - 16) ~len:32;
  let addr = boundary - 3 in
  Memory.write_word mem addr 0x123456789abcd;
  Alcotest.(check int) "straddling word" 0x123456789abcd (Memory.read_word mem addr)

let test_narrow_roundtrips () =
  let mem = Memory.create () in
  Memory.map_region mem ~addr:Memory.globals_base ~len:16;
  Memory.write_u16 mem Memory.globals_base 0xbeef;
  Alcotest.(check int) "u16" 0xbeef (Memory.read_u16 mem Memory.globals_base);
  Memory.write_u32 mem Memory.globals_base 0xdeadbeef;
  Alcotest.(check int) "u32" 0xdeadbeef (Memory.read_u32 mem Memory.globals_base)

let test_stack_demand_mapping () =
  let mem = Memory.create () in
  (* Stack pages appear on first touch... *)
  let addr = Memory.stack_top - 4096 in
  Memory.write_word mem addr 99;
  Alcotest.(check int) "stack write visible" 99 (Memory.read_word mem addr);
  (* ...but only inside the stack region. *)
  try
    ignore (Memory.read_u8 mem (Memory.stack_top - Memory.default_stack_bytes - 64));
    Alcotest.fail "below-stack access did not trap"
  with Trap.Trap (Trap.Unmapped_read _) -> ()

let test_heap_alloc_distinct_and_aligned () =
  let mem = Memory.create () in
  let a = Memory.heap_alloc mem 24 in
  let b = Memory.heap_alloc mem 100 in
  Alcotest.(check bool) "aligned" true (a land 15 = 0 && b land 15 = 0);
  Alcotest.(check bool) "disjoint" true (b >= a + 24);
  Memory.write_word mem a 1;
  Memory.write_word mem b 2;
  Alcotest.(check int) "no aliasing" 1 (Memory.read_word mem a)

let test_heap_arena_slack () =
  let mem = Memory.create () in
  let a = Memory.heap_alloc mem 8 in
  (* Overruns within the 64 KiB arena chunk read zeroes (silent), as on a
     malloc'd heap with slack... *)
  Alcotest.(check int) "slack reads zero" 0 (Memory.read_u8 mem (a + 64));
  (* ...but escaping the arena entirely still traps. *)
  try
    ignore (Memory.read_u8 mem (a + (1 lsl 22)));
    Alcotest.fail "far heap overrun did not trap"
  with Trap.Trap (Trap.Unmapped_read _) -> ()

let test_blit_string () =
  let mem = Memory.create () in
  Memory.map_region mem ~addr:Memory.globals_base ~len:32;
  Memory.blit_string mem ~addr:Memory.globals_base "hello";
  Alcotest.(check int) "h" (Char.code 'h') (Memory.read_u8 mem Memory.globals_base);
  Alcotest.(check int) "o" (Char.code 'o') (Memory.read_u8 mem (Memory.globals_base + 4))

(* --- snapshots: copy-on-write views must equal deep-copy semantics --- *)

(* Arbitrary write sequences over a two-page globals window plus the top
   stack page: bytes, straddling words, and demand-mapped stack bytes,
   so COW cloning, multi-layer fall-through and demand mapping all get
   exercised. *)
let region_len = (2 * Memory.page_size) + 16

let apply mem ws =
  List.iter
    (fun (off, v) ->
      match v land 3 with
      | 0 | 1 -> Memory.write_u8 mem (Memory.globals_base + off) (v land 0xff)
      | 2 ->
        Memory.write_word mem (Memory.globals_base + (off land lnot 7)) v
      | _ ->
        Memory.write_u8 mem
          (Memory.stack_top - Memory.page_size + (off land (Memory.page_size - 1)))
          (v land 0xff))
    ws

(* The deep-copy reference: a fresh memory with the same writes replayed. *)
let replay ws =
  let mem = Memory.create () in
  Memory.map_region mem ~addr:Memory.globals_base ~len:region_len;
  apply mem ws;
  mem

let equal_mems a b =
  let ok = ref true in
  for off = 0 to region_len - 1 do
    if Memory.read_u8 a (Memory.globals_base + off)
       <> Memory.read_u8 b (Memory.globals_base + off)
    then ok := false
  done;
  for off = 0 to Memory.page_size - 1 do
    let addr = Memory.stack_top - Memory.page_size + off in
    if Memory.read_u8 a addr <> Memory.read_u8 b addr then ok := false
  done;
  !ok

let writes_gen =
  QCheck.(
    list_of_size
      Gen.(0 -- 40)
      (pair (int_bound ((2 * Memory.page_size) - 1)) int))

let test_snapshot_cow_isolation =
  QCheck.Test.make ~name:"resumed views behave like deep copies" ~count:100
    QCheck.(pair writes_gen writes_gen)
    (fun (w1, w2) ->
      let mem = replay w1 in
      let snap = Memory.freeze mem in
      let a = Memory.resume snap in
      let b = Memory.resume snap in
      apply a w2;
      (* Writes through [a] are invisible to its sibling view and to the
         frozen memory, and [a] itself reads as if the combined sequence
         had been applied to a private deep copy. *)
      equal_mems b (replay w1)
      && equal_mems mem (replay w1)
      && equal_mems a (replay (w1 @ w2)))

let test_snapshot_chain =
  QCheck.Test.make
    ~name:"chained freeze/resume reproduces sequential execution" ~count:100
    QCheck.(triple writes_gen writes_gen writes_gen)
    (fun (w1, w2, w3) ->
      let mem = replay w1 in
      let v1 = Memory.resume (Memory.freeze mem) in
      apply v1 w2;
      let v2 = Memory.resume (Memory.freeze v1) in
      apply v2 w3;
      (* Each layer of the chain equals the straight-line replay of its
         prefix, however the pages are shared underneath. *)
      equal_mems v2 (replay (w1 @ w2 @ w3))
      && equal_mems v1 (replay (w1 @ w2))
      && equal_mems mem (replay w1))

let test_snapshot_traps_preserved () =
  (* A resumed view has the same mapping as the frozen memory: unmapped
     addresses still trap. *)
  let mem = Memory.create () in
  Memory.map_region mem ~addr:Memory.globals_base ~len:16;
  let v = Memory.resume (Memory.freeze mem) in
  Alcotest.(check int) "mapped reads through" 0
    (Memory.read_u8 v Memory.globals_base);
  try
    ignore (Memory.read_u8 v 0x1234);
    Alcotest.fail "unmapped read through a view did not trap"
  with Trap.Trap (Trap.Unmapped_read 0x1234) -> ()

let test_segment_layout_sanity () =
  (* The crash model depends on segments being far apart: a high-bit flip
     of a pointer must leave every mapped region. *)
  Alcotest.(check bool) "text < globals < heap < stack" true
    (Memory.text_base < Memory.globals_base
    && Memory.globals_base < Memory.heap_base
    && Memory.heap_base < Memory.stack_top - Memory.default_stack_bytes);
  Alcotest.(check bool) "null page unmapped by construction" true
    (Memory.text_base > Memory.page_size)

let () =
  Alcotest.run "memory"
    [
      ( "traps",
        [
          ("unmapped", `Quick, test_unmapped_traps);
          ("negative address", `Quick, test_negative_address_traps);
        ] );
      ( "roundtrips",
        [
          ("bytes", `Quick, test_byte_roundtrip);
          ("cross-page", `Quick, test_cross_page_access);
          ("narrow", `Quick, test_narrow_roundtrips);
          ("blit string", `Quick, test_blit_string);
        ]
        @ List.map QCheck_alcotest.to_alcotest
            [ test_word_roundtrip; test_f64_roundtrip ] );
      ( "regions",
        [
          ("stack demand mapping", `Quick, test_stack_demand_mapping);
          ("heap alloc", `Quick, test_heap_alloc_distinct_and_aligned);
          ("heap arena slack", `Quick, test_heap_arena_slack);
          ("segment layout", `Quick, test_segment_layout_sanity);
        ] );
      ( "snapshots",
        [ ("traps preserved", `Quick, test_snapshot_traps_preserved) ]
        @ List.map QCheck_alcotest.to_alcotest
            [ test_snapshot_cow_isolation; test_snapshot_chain ] );
    ]
