(* Tests for the diagnosis subsystem: record line format, sink
   determinism under parallel execution, first-use classification
   invariants, and tally neutrality of use tracking. *)

let mcf = Workloads.find_exn "mcf"
let libquantum = Workloads.find_exn "libquantum"

let small_config = { Core.Campaign.default_config with trials = 12 }

let activated (r : Diagnose.Record.t) =
  match r.verdict with
  | Core.Verdict.Benign | Core.Verdict.Sdc | Core.Verdict.Crash
  | Core.Verdict.Hang ->
    true
  | Core.Verdict.Not_activated | Core.Verdict.Not_injected -> false

(* Run a small campaign with diagnosis capture. *)
let capture ?(jobs = 1) ?(workloads = [ mcf ]) () =
  let sink = Diagnose.Sink.create () in
  let result =
    Engine.Scheduler.run ~jobs
      ~observe:(fun ~workload ~tool ~category ~trial verdict stats ->
        Diagnose.Sink.add sink
          (Diagnose.Record.of_stats ~workload ~tool ~category ~trial verdict
             stats))
      ~track_use:true small_config workloads
  in
  (sink, result)

(* --- record line format --- *)

let test_record_roundtrip () =
  let sink, result = capture () in
  let records = Diagnose.Sink.records sink in
  (* One record per executed trial; empty-population cells run none. *)
  let executed =
    List.fold_left
      (fun acc (c : Core.Campaign.cell) ->
        acc + c.c_tally.Core.Verdict.trials)
      0 result.Engine.Scheduler.cells
  in
  Alcotest.(check int) "captured one record per executed trial" executed
    (List.length records);
  List.iter
    (fun r ->
      match Diagnose.Record.of_line (Diagnose.Record.to_line r) with
      | Error msg -> Alcotest.fail msg
      | Ok r' ->
        Alcotest.(check string) "line roundtrip"
          (Diagnose.Record.to_line r)
          (Diagnose.Record.to_line r');
        Alcotest.(check int) "order key preserved" 0
          (Diagnose.Record.compare r r'))
    records

(* QCheck: the line format round-trips for *arbitrary* records, not
   just ones a campaign happens to produce.  Trap payloads (addresses)
   are deliberately not encoded, so equality is at the line level. *)
let record_arbitrary =
  let open QCheck.Gen in
  let gen =
    let* workload = oneofl [ "mcf"; "nw"; "libquantum"; "w"; "x0" ] in
    let* tool = oneofl [ Core.Campaign.Llfi_tool; Core.Campaign.Pinfi_tool ] in
    let* category = oneofl Core.Category.all in
    let* trial = small_nat in
    let* verdict =
      oneofl
        Core.Verdict.
          [ Benign; Sdc; Crash; Hang; Not_activated; Not_injected ]
    in
    let* fault_site = map (fun n -> n - 1) small_nat in
    let* injected_step = map (fun n -> n - 1) small_nat in
    let* steps = small_nat in
    let* payload = small_nat in
    let* trap =
      oneofl
        Vm.Trap.
          [
            None;
            Some (Unmapped_read payload);
            Some (Unmapped_write payload);
            Some Division_by_zero;
            Some (Invalid_jump payload);
            Some Stack_overflow;
            Some Unreachable_executed;
          ]
    in
    let* first_use = oneofl Vm.First_use.all in
    return
      {
        Diagnose.Record.workload;
        tool;
        category;
        trial;
        verdict;
        fault_site;
        injected_step;
        steps;
        trap;
        first_use;
      }
  in
  QCheck.make ~print:Diagnose.Record.to_line gen

let test_record_roundtrip_property =
  QCheck.Test.make ~name:"any record round-trips through its line" ~count:300
    record_arbitrary (fun r ->
      let line = Diagnose.Record.to_line r in
      match Diagnose.Record.of_line line with
      | Error _ -> false
      | Ok r' ->
        Diagnose.Record.to_line r' = line && Diagnose.Record.compare r r' = 0)

(* QCheck: writing any batch of records through a sink and loading the
   file back yields the same records in canonical order, regardless of
   insertion order. *)
let test_sink_roundtrip_property =
  QCheck.Test.make ~name:"sink write/load round-trips any batch" ~count:60
    (QCheck.list_of_size (QCheck.Gen.int_range 0 12) record_arbitrary)
    (fun records ->
      let sink = Diagnose.Sink.create () in
      List.iter (Diagnose.Sink.add sink) records;
      let path = Filename.temp_file "sink_prop" ".txt" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          Diagnose.Sink.write sink path;
          let loaded = Diagnose.Sink.load path in
          let lines = List.map Diagnose.Record.to_line in
          (* Exactly what the sink holds, in its canonical order... *)
          lines loaded = lines (Diagnose.Sink.records sink)
          (* ...which is sorted, and loses/invents nothing (records
             with equal sort keys may tie-break arbitrarily, so the
             content check is as a multiset). *)
          && List.sort compare (lines loaded)
             = List.sort compare (lines records)
          &&
          let rec sorted = function
            | a :: b :: tl ->
              Diagnose.Record.compare a b <= 0 && sorted (b :: tl)
            | _ -> true
          in
          sorted loaded))

let test_record_rejects_garbage () =
  List.iter
    (fun line ->
      match Diagnose.Record.of_line line with
      | Ok _ -> Alcotest.failf "accepted %S" line
      | Error _ -> ())
    [
      "";
      "mcf LLFI all 0 benign 1 2 3 -";
      "mcf NOFI all 0 benign 1 2 3 - data";
      "mcf LLFI all x benign 1 2 3 - data";
      "mcf LLFI all 0 benign 1 2 3 segv data";
    ]

(* --- sink: parallel determinism and file roundtrip --- *)

let test_sink_jobs_determinism () =
  let s1, r1 = capture ~jobs:1 ~workloads:[ mcf; libquantum ] () in
  let s4, r4 = capture ~jobs:4 ~workloads:[ mcf; libquantum ] () in
  Alcotest.(check string) "record files byte-identical"
    (Diagnose.Sink.to_string s1) (Diagnose.Sink.to_string s4);
  Alcotest.(check string) "cell csv byte-identical"
    (Core.Campaign.to_csv r1.Engine.Scheduler.cells)
    (Core.Campaign.to_csv r4.Engine.Scheduler.cells)

let test_sink_file_roundtrip () =
  let sink, _ = capture () in
  let path = Filename.temp_file "fi_records" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Diagnose.Sink.write sink path;
      let loaded = Diagnose.Sink.load path in
      Alcotest.(check (list string)) "records survive the file"
        (List.map Diagnose.Record.to_line (Diagnose.Sink.records sink))
        (List.map Diagnose.Record.to_line loaded))

(* --- first-use classification invariants --- *)

let test_first_use_invariants () =
  let sink, _ = capture ~workloads:[ mcf; libquantum ] () in
  let records = Diagnose.Sink.records sink in
  List.iter
    (fun (r : Diagnose.Record.t) ->
      (* The IR has no stack-frame traffic to corrupt — spills and
         push/pop exist only below the IR (the paper's §V point). *)
      if r.tool = Core.Campaign.Llfi_tool then
        Alcotest.(check bool)
          "LLFI never classifies a first use as stack" false
          (r.first_use = Vm.First_use.Ustack);
      (* At the assembly level activation IS the first read, so every
         activated PINFI trial has a classified consumer. *)
      if r.tool = Core.Campaign.Pinfi_tool && activated r then
        Alcotest.(check bool) "activated PINFI trial classified" true
          (r.first_use <> Vm.First_use.Unone);
      (* A cmp-category fault at the assembly level corrupts flags; the
         only reader of flags is conditional control. *)
      if
        r.tool = Core.Campaign.Pinfi_tool
        && r.category = Core.Category.Cmp
        && activated r
      then
        Alcotest.(check bool) "PINFI cmp first use is control" true
          (r.first_use = Vm.First_use.Ucontrol);
      (* Crash latency is defined exactly for crashed-after-injection
         trials and is positive. *)
      match Diagnose.Record.crash_latency r with
      | Some l ->
        Alcotest.(check bool) "latency positive" true (l > 0);
        Alcotest.(check bool) "latency only for crashes" true
          (r.verdict = Core.Verdict.Crash)
      | None ->
        Alcotest.(check bool) "no latency for non-crashes" true
          (r.verdict <> Core.Verdict.Crash || r.injected_step < 0))
    records;
  (* The data is not degenerate: addresses and control uses both occur. *)
  let count use =
    List.length (List.filter (fun r -> r.Diagnose.Record.first_use = use) records)
  in
  Alcotest.(check bool) "some addr uses" true (count Vm.First_use.Uaddr > 0);
  Alcotest.(check bool) "some control uses" true
    (count Vm.First_use.Ucontrol > 0)

(* --- use tracking does not perturb results --- *)

let test_track_use_tally_neutral () =
  let p = Core.Campaign.prepare small_config mcf in
  let run track_use =
    List.concat_map
      (fun tool ->
        List.map
          (fun category ->
            Core.Campaign.run_cell ~track_use small_config p tool category)
          Core.Category.all)
      [ Core.Campaign.Llfi_tool; Core.Campaign.Pinfi_tool ]
  in
  Alcotest.(check string) "csv identical with tracking on"
    (Core.Campaign.to_csv (run false))
    (Core.Campaign.to_csv (run true))

(* --- summary rendering --- *)

let test_summary_renders () =
  let sink, _ = capture ~workloads:[ mcf; libquantum ] () in
  let out = Diagnose.Summary.render (Diagnose.Sink.records sink) in
  List.iter
    (fun needle ->
      let n = String.length needle and h = String.length out in
      let rec at i =
        i + n <= h && (String.sub out i n = needle || at (i + 1))
      in
      Alcotest.(check bool) (Printf.sprintf "mentions %S" needle) true (at 0))
    [ "Crash causes"; "Crash latency"; "divergence"; "mcf"; "libquantum" ];
  Alcotest.(check string) "empty input handled" "no diagnosis records\n"
    (Diagnose.Summary.render [])

let () =
  Alcotest.run "diagnose"
    [
      ( "record",
        [
          ("line roundtrip", `Slow, test_record_roundtrip);
          ("garbage rejected", `Quick, test_record_rejects_garbage);
          QCheck_alcotest.to_alcotest test_record_roundtrip_property;
          QCheck_alcotest.to_alcotest test_sink_roundtrip_property;
        ] );
      ( "sink",
        [
          ("jobs=1 vs jobs=4 byte-identical", `Slow, test_sink_jobs_determinism);
          ("file roundtrip", `Slow, test_sink_file_roundtrip);
        ] );
      ( "classification",
        [
          ("first-use invariants", `Slow, test_first_use_invariants);
          ("tracking is tally-neutral", `Slow, test_track_use_tally_neutral);
        ] );
      ("summary", [ ("renders", `Slow, test_summary_renders) ]);
    ]
