(* Tests for the study's core: categories, classification by both
   injectors, verdicts, campaign mechanics and determinism. *)

let mcf = Workloads.find_exn "mcf"

let small_config = { Core.Campaign.default_config with trials = 25 }

let prepared = lazy (Core.Campaign.prepare small_config mcf)

(* --- Category --- *)

let test_category_bits_distinct () =
  let masks = List.map Core.Category.mask Core.Category.all in
  let distinct = List.sort_uniq compare masks in
  Alcotest.(check int) "distinct masks" (List.length masks) (List.length distinct);
  List.iter
    (fun c ->
      match Core.Category.of_string (Core.Category.name c) with
      | Some c' when c = c' -> ()
      | _ -> Alcotest.failf "roundtrip failed for %s" (Core.Category.name c))
    Core.Category.all

let test_category_totals () =
  (* Mask 0b10001 counts toward Arithmetic and All. *)
  let counts = Array.make 32 0 in
  counts.(Core.Category.mask Core.Category.Arithmetic
          lor Core.Category.mask Core.Category.All) <- 7;
  counts.(Core.Category.mask Core.Category.Load) <- 3;
  let totals = Core.Category.totals_of_mask_counts counts in
  Alcotest.(check int) "arith" 7 (List.assoc Core.Category.Arithmetic totals);
  Alcotest.(check int) "all" 7 (List.assoc Core.Category.All totals);
  Alcotest.(check int) "load" 3 (List.assoc Core.Category.Load totals);
  Alcotest.(check int) "cmp" 0 (List.assoc Core.Category.Cmp totals)

(* --- LLFI classification --- *)

let classify_src src =
  let prog = Opt.optimize (Minic.compile src) in
  let f = Ir.Prog.main prog in
  let classify = Core.Llfi.classify Core.Llfi.default_config f in
  (f, classify)

let test_llfi_classify_categories () =
  let f, classify =
    classify_src
      {|
      double gd = 1.5;
      int gi = 3;
      void main() {
        double d = gd * 2.0;           // load + fbinop
        int x = gi + (int)d;           // load + fptosi cast + binop
        if (x > 4) { print_int(x); } else { print_double(d); }
      }
      |}
  in
  let seen = Hashtbl.create 8 in
  Ir.Func.iter_instrs
    (fun i ->
      let mask = classify i in
      List.iter
        (fun c ->
          if mask land Core.Category.mask c <> 0 then Hashtbl.replace seen c ())
        Core.Category.all)
    f;
  List.iter
    (fun c ->
      if not (Hashtbl.mem seen c) then
        Alcotest.failf "category %s never assigned" (Core.Category.name c))
    [ Core.Category.Arithmetic; Core.Category.Cast; Core.Category.Cmp;
      Core.Category.Load; Core.Category.All ]

let test_llfi_skips_dead_destinations () =
  (* A store has no destination: mask must be 0.  Pointer casts are
     excluded from 'cast' under the default config. *)
  let _, classify =
    classify_src
      {|
      int g = 0;
      void main() {
        int *p = (int*) alloc(8);   // bitcast: not a conversion cast
        *p = 4;
        g = *p;
        print_int(g);
      }
      |}
  in
  let prog = Opt.optimize (Minic.compile "void main() { print_int(1); }") in
  ignore prog;
  ignore classify

let test_llfi_cast_pruning () =
  let src =
    {|
    void main() {
      int *p = (int*) alloc(16);
      p[0] = 42;
      double d = (double) p[0];
      print_double(d);
    }
    |}
  in
  let count config =
    let prog = Opt.optimize (Minic.compile src) in
    let f = Ir.Prog.main prog in
    let classify = Core.Llfi.classify config f in
    Ir.Func.fold_instrs
      (fun acc i ->
        if classify i land Core.Category.mask Core.Category.Cast <> 0 then acc + 1
        else acc)
      0 f
  in
  let pruned = count Core.Llfi.default_config in
  let unpruned =
    count { Core.Llfi.default_config with conversion_casts_only = false }
  in
  Alcotest.(check bool) "pruning reduces cast candidates" true (pruned <= unpruned);
  Alcotest.(check bool) "conversion cast still counted" true (pruned >= 1)

(* --- PINFI classification --- *)

let test_pinfi_classify () =
  let prog = Opt.optimize (Minic.compile mcf.Core.Workload.source) in
  let asm = Backend.compile prog in
  let insns = asm.Backend.Program.insns in
  Array.iteri
    (fun i insn ->
      let mask = Core.Pinfi.classify asm i insn in
      let has c = mask land Core.Category.mask c <> 0 in
      (* Any categorized instruction must also be in 'all'. *)
      if mask <> 0 && not (has Core.Category.All) then
        Alcotest.failf "instruction %d categorized but not in 'all'" i;
      (* Syscalls, stores, pushes and branches are never candidates. *)
      (match insn with
      | X86.Insn.Syscall _ | X86.Insn.Store _ | X86.Insn.Store_imm _
      | X86.Insn.Store_sd _ | X86.Insn.Push _ | X86.Insn.Jmp _
      | X86.Insn.Call _ | X86.Insn.Ret ->
        if has Core.Category.All && not (has Core.Category.Cmp) then
          Alcotest.failf "non-candidate instruction %d in 'all'" i
      | _ -> ());
      (* The cmp category requires a following conditional jump. *)
      if has Core.Category.Cmp then begin
        if not (X86.Insn.writes_flags insn) then
          Alcotest.failf "cmp-category instruction %d does not write flags" i;
        match insns.(i + 1) with
        | X86.Insn.Jcc _ -> ()
        | _ -> Alcotest.failf "cmp-category instruction %d not before jcc" i
      end;
      (* Loads are mov-with-memory-source. *)
      if has Core.Category.Load then
        match insn with
        | X86.Insn.Mov (_, X86.Insn.Mem _)
        | X86.Insn.Movzx (_, _, X86.Insn.Mem _)
        | X86.Insn.Movsx (_, _, X86.Insn.Mem _)
        | X86.Insn.Movsd (_, X86.Insn.Xmem _) ->
          ()
        | _ -> Alcotest.failf "load-category instruction %d is not a load" i)
    insns

(* --- Verdict --- *)

let stats outcome ~injected ~activated =
  { Vm.Outcome.outcome; steps = 1; injected; activated; fault_note = "";
    injected_step = (if injected then 0 else -1);
    fault_site = (if injected then 0 else -1);
    first_use = Vm.First_use.Unone }

let test_verdict_classification () =
  let golden_output = "expected" in
  let check name expected st =
    Alcotest.(check string)
      name
      (Core.Verdict.name expected)
      (Core.Verdict.name (Core.Verdict.of_run ~golden_output st))
  in
  check "benign" Core.Verdict.Benign
    (stats (Vm.Outcome.Finished "expected") ~injected:true ~activated:true);
  check "sdc" Core.Verdict.Sdc
    (stats (Vm.Outcome.Finished "corrupted") ~injected:true ~activated:true);
  check "crash" Core.Verdict.Crash
    (stats (Vm.Outcome.Crashed Vm.Trap.Division_by_zero) ~injected:true
       ~activated:true);
  check "hang" Core.Verdict.Hang
    (stats Vm.Outcome.Hung ~injected:true ~activated:true);
  check "not activated" Core.Verdict.Not_activated
    (stats (Vm.Outcome.Finished "expected") ~injected:true ~activated:false);
  check "not injected" Core.Verdict.Not_injected
    (stats (Vm.Outcome.Finished "expected") ~injected:false ~activated:false)

let test_tally_rates () =
  let t = Core.Verdict.fresh_tally () in
  List.iter (Core.Verdict.add t)
    [ Core.Verdict.Sdc; Core.Verdict.Sdc; Core.Verdict.Crash;
      Core.Verdict.Benign; Core.Verdict.Not_activated ];
  Alcotest.(check int) "trials" 5 t.Core.Verdict.trials;
  Alcotest.(check int) "activated" 4 (Core.Verdict.activated t);
  Alcotest.(check (float 1e-9)) "sdc rate among activated" 0.5
    (Core.Verdict.sdc_rate t);
  Alcotest.(check (float 1e-9)) "crash rate" 0.25 (Core.Verdict.crash_rate t)

(* --- Campaign --- *)

let test_prepare_golden_match () =
  let p = Lazy.force prepared in
  Alcotest.(check string) "golden outputs equal at both levels"
    p.Core.Campaign.llfi.Core.Llfi.golden_output
    p.Core.Campaign.pinfi.Core.Pinfi.golden_output

let test_campaign_deterministic () =
  let p = Lazy.force prepared in
  let run () =
    let cell =
      Core.Campaign.run_cell small_config p Core.Campaign.Llfi_tool
        Core.Category.Load
    in
    let t = cell.Core.Campaign.c_tally in
    (t.Core.Verdict.sdc, t.crash, t.benign, t.hang)
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "identical tallies for identical seed" true (a = b)

let test_campaign_seed_changes_results () =
  let p = Lazy.force prepared in
  let run seed =
    let config = { small_config with seed; trials = 60 } in
    let cell =
      Core.Campaign.run_cell config p Core.Campaign.Llfi_tool Core.Category.All
    in
    let t = cell.Core.Campaign.c_tally in
    (t.Core.Verdict.sdc, t.crash, t.benign)
  in
  Alcotest.(check bool) "different seeds give different tallies" true
    (run 1 <> run 2)

let test_campaign_counts_trials () =
  let p = Lazy.force prepared in
  let cell =
    Core.Campaign.run_cell small_config p Core.Campaign.Pinfi_tool
      Core.Category.Arithmetic
  in
  Alcotest.(check int) "all trials accounted" small_config.trials
    cell.Core.Campaign.c_tally.Core.Verdict.trials;
  Alcotest.(check bool) "population profiled" true (cell.c_population > 0)

let test_injection_changes_behavior_sometimes () =
  let p = Lazy.force prepared in
  let cell =
    Core.Campaign.run_cell
      { small_config with trials = 40 }
      p Core.Campaign.Llfi_tool Core.Category.All
  in
  let t = cell.Core.Campaign.c_tally in
  Alcotest.(check bool) "some faults are not benign" true
    (t.Core.Verdict.sdc + t.crash + t.hang > 0)

let test_csv_export () =
  let p = Lazy.force prepared in
  let cell =
    Core.Campaign.run_cell small_config p Core.Campaign.Llfi_tool
      Core.Category.Cmp
  in
  let csv = Core.Campaign.to_csv [ cell ] in
  let lines = String.split_on_char '\n' csv in
  Alcotest.(check int) "header + row + newline" 3 (List.length lines);
  Alcotest.(check bool) "mentions workload" true
    (String.length csv > 0
    &&
    let re = Str.regexp_string "mcf,LLFI,cmp" in
    (try ignore (Str.search_forward re csv 0); true with Not_found -> false))

(* --- Activation tracking (PINFI) --- *)

let test_pinfi_activation_high () =
  (* The paper's heuristics exist to keep activation high; check that the
     vast majority of PINFI faults are activated. *)
  let p = Lazy.force prepared in
  let cell =
    Core.Campaign.run_cell
      { small_config with trials = 100 }
      p Core.Campaign.Pinfi_tool Core.Category.All
  in
  let t = cell.Core.Campaign.c_tally in
  let activated = Core.Verdict.activated t in
  Alcotest.(check bool)
    (Printf.sprintf "activation rate high (%d/%d)" activated t.trials)
    true
    (float_of_int activated >= 0.85 *. float_of_int t.Core.Verdict.trials)

(* --- Propagation tracing --- *)

let test_traces_are_deterministic () =
  let prog = Opt.optimize (Minic.compile mcf.Core.Workload.source) in
  let compiled = Vm.Ir_exec.compile prog in
  let record () =
    let tr = Vm.Ir_exec.create_trace () in
    ignore (Vm.Ir_exec.run ~inputs:mcf.Core.Workload.inputs ~trace:tr compiled);
    tr
  in
  let a = record () and b = record () in
  Alcotest.(check int) "same length" a.Vm.Ir_exec.t_len b.Vm.Ir_exec.t_len;
  let same = ref true in
  for i = 0 to a.Vm.Ir_exec.t_len - 1 do
    if a.t_gids.(i) <> b.t_gids.(i) || a.t_vals.(i) <> b.t_vals.(i) then
      same := false
  done;
  Alcotest.(check bool) "identical traces" true !same

let test_propagation_reports () =
  let prog = Opt.optimize (Minic.compile mcf.Core.Workload.source) in
  let llfi = Core.Llfi.prepare ~inputs:mcf.Core.Workload.inputs prog in
  let rng = Support.Rng.of_int 31 in
  let diverged = ref 0 in
  for _ = 1 to 12 do
    let r = Core.Propagation.analyze llfi Core.Category.All (Support.Rng.split rng) in
    (* Structural invariants of a report. *)
    (match (r.Core.Propagation.first_divergence, r.control_flow_diverged_at) with
    | Some f, Some c ->
      if c < f then Alcotest.fail "control diverged before first divergence"
    | None, Some _ -> Alcotest.fail "control divergence without any divergence"
    | _ -> ());
    (match r.Core.Propagation.first_divergence with
    | Some f ->
      incr diverged;
      if f > r.golden_length then Alcotest.fail "divergence beyond trace"
    | None ->
      (* A vanished fault must be benign. *)
      if r.outcome <> Core.Verdict.Benign then
        Alcotest.failf "vanished fault classified %s" (Core.Verdict.name r.outcome))
  done;
  Alcotest.(check bool) "some faults propagate" true (!diverged > 0)

let test_benign_faults_can_still_propagate () =
  (* compare_traces on identical traces: no divergence. *)
  let tr = Vm.Ir_exec.create_trace () in
  Vm.Ir_exec.trace_push tr 1 10;
  Vm.Ir_exec.trace_push tr 2 20;
  let first, corrupted, cf = Core.Propagation.compare_traces tr tr in
  Alcotest.(check bool) "no divergence" true
    (first = None && corrupted = 0 && cf = None);
  (* One corrupted value, same control flow. *)
  let tr2 = Vm.Ir_exec.create_trace () in
  Vm.Ir_exec.trace_push tr2 1 10;
  Vm.Ir_exec.trace_push tr2 2 99;
  let first, corrupted, cf = Core.Propagation.compare_traces tr tr2 in
  Alcotest.(check bool) "value divergence at 1" true
    (first = Some 1 && corrupted = 1 && cf = None);
  (* Control-flow divergence. *)
  let tr3 = Vm.Ir_exec.create_trace () in
  Vm.Ir_exec.trace_push tr3 1 10;
  Vm.Ir_exec.trace_push tr3 7 20;
  let first, _, cf = Core.Propagation.compare_traces tr tr3 in
  Alcotest.(check bool) "cf divergence at 1" true (first = Some 1 && cf = Some 1);
  (* Truncated faulty trace (crash) counts as control-flow divergence. *)
  let tr4 = Vm.Ir_exec.create_trace () in
  Vm.Ir_exec.trace_push tr4 1 10;
  let _, _, cf = Core.Propagation.compare_traces tr tr4 in
  Alcotest.(check bool) "truncation is cf divergence" true (cf = Some 1)

(* --- Paper data integrity --- *)

let test_paper_data_complete () =
  List.iter
    (fun w ->
      let name = w.Core.Workload.name in
      if Core.Paper_data.counts_for name = None then
        Alcotest.failf "no Table IV data for %s" name;
      if Core.Paper_data.crash_for name = None then
        Alcotest.failf "no Table V data for %s" name)
    Workloads.all

let test_paper_table4_claims_hold_internally () =
  (* Sanity: the transcribed paper numbers satisfy the paper's own claims. *)
  List.iter
    (fun (r : Core.Paper_data.counts_row) ->
      let llfi_all, pinfi_all = r.p_all in
      Alcotest.(check bool)
        (r.p_bench ^ ": paper LLFI all > PINFI all")
        true (llfi_all > pinfi_all))
    Core.Paper_data.table4

let test_injected_step_recorded () =
  let p = Lazy.force prepared in
  let rng = Support.Rng.of_int 91 in
  for _ = 1 to 15 do
    let s = Core.Llfi.inject p.Core.Campaign.llfi Core.Category.All (Support.Rng.split rng) in
    if s.Vm.Outcome.injected then begin
      if s.Vm.Outcome.injected_step < 0 || s.Vm.Outcome.injected_step > s.Vm.Outcome.steps
      then Alcotest.fail "injected_step outside the run (LLFI)"
    end
    else Alcotest.(check int) "clean run" (-1) s.Vm.Outcome.injected_step;
    let s = Core.Pinfi.inject p.Core.Campaign.pinfi Core.Category.All (Support.Rng.split rng) in
    if s.Vm.Outcome.injected then
      if s.Vm.Outcome.injected_step < 0 || s.Vm.Outcome.injected_step > s.Vm.Outcome.steps
      then Alcotest.fail "injected_step outside the run (PINFI)"
  done

let test_custom_selector_restricts () =
  let w = Workloads.find_exn "raytrace" in
  let prog = Opt.optimize (Minic.compile w.Core.Workload.source) in
  let full = Core.Llfi.prepare ~inputs:w.Core.Workload.inputs prog in
  let restricted =
    Core.Llfi.prepare
      ~config:
        { Core.Llfi.default_config with
          custom_selector = Core.Llfi.in_functions [ "trace" ] }
      ~inputs:w.Core.Workload.inputs prog
  in
  let f = Core.Llfi.dynamic_count full Core.Category.All in
  let r = Core.Llfi.dynamic_count restricted Core.Category.All in
  Alcotest.(check bool) "restriction shrinks the population" true (0 < r && r < f)

(* --- snapshot executor --- *)

(* The snapshot/fast-forward path must be invisible: same tallies, same
   per-trial verdicts, same full stats stream, per cell, for both
   tools. *)
let test_snapshot_matches_direct () =
  let p = Lazy.force prepared in
  let collect cfg tool category =
    let acc = ref [] in
    let cell =
      Core.Campaign.run_cell
        ~on_stats:(fun trial v st -> acc := (trial, v, st) :: !acc)
        cfg p tool category
    in
    (cell.Core.Campaign.c_tally, List.rev !acc)
  in
  List.iter
    (fun tool ->
      List.iter
        (fun category ->
          let t_on, s_on =
            collect { small_config with snapshot = true } tool category
          in
          let t_off, s_off =
            collect { small_config with snapshot = false } tool category
          in
          let name =
            Printf.sprintf "%s/%s"
              (Core.Campaign.tool_name tool)
              (Core.Category.name category)
          in
          Alcotest.(check bool) (name ^ " tally") true (t_on = t_off);
          Alcotest.(check bool) (name ^ " stats stream") true (s_on = s_off))
        Core.Category.all)
    [ Core.Campaign.Llfi_tool; Core.Campaign.Pinfi_tool ]

(* A runner reused across successive ranges (the scheduler's per-domain
   cache) must merge to exactly the single-shot cell, and a runner from
   another cell must be rejected. *)
let test_snapshot_runner_reuse () =
  let p = Lazy.force prepared in
  let tool = Core.Campaign.Llfi_tool in
  let category = Core.Category.All in
  let whole = Core.Campaign.run_cell small_config p tool category in
  let r = Core.Campaign.runner p tool category in
  let h1 =
    Core.Campaign.run_cell_range ~runner:r small_config p tool category
      ~first:0 ~count:13
  in
  let h2 =
    Core.Campaign.run_cell_range ~runner:r small_config p tool category
      ~first:13 ~count:(small_config.Core.Campaign.trials - 13)
  in
  Alcotest.(check bool) "halves merge to the whole" true
    (Core.Verdict.merge h1.Core.Campaign.c_tally h2.Core.Campaign.c_tally
    = whole.Core.Campaign.c_tally);
  match
    Core.Campaign.run_cell_range ~runner:r small_config p
      Core.Campaign.Pinfi_tool category ~first:0 ~count:1
  with
  | _ -> Alcotest.fail "runner from another cell was accepted"
  | exception Invalid_argument _ -> ()

(* plan_target + inject_at must reproduce inject bit-for-bit even when
   the targets are visited in a hostile (descending) order — the
   fast-forward machine rebuilds itself on non-monotonic targets. *)
let test_ff_trial_any_order () =
  let p = Lazy.force prepared in
  let llfi = p.Core.Campaign.llfi in
  let category = Core.Category.All in
  let rngs () =
    let m = Support.Rng.of_int 99 in
    Array.init 12 (fun _ -> Support.Rng.split m)
  in
  let reference = Array.map (Core.Llfi.inject llfi category) (rngs ()) in
  let r = Core.Llfi.runner llfi category in
  let rngs2 = rngs () in
  let replayed = Array.make (Array.length rngs2) None in
  for i = Array.length rngs2 - 1 downto 0 do
    let target = Core.Llfi.plan_target llfi category rngs2.(i) in
    replayed.(i) <- Some (Core.Llfi.inject_at r ~target rngs2.(i))
  done;
  Array.iteri
    (fun i stats ->
      Alcotest.(check bool)
        (Printf.sprintf "trial %d" i)
        true
        (Some stats = replayed.(i)))
    reference

(* --- EDC severity --- *)

let test_edc_tokenize () =
  let toks = Core.Edc.tokenize "sum=-12 p=0.500000 ok" in
  match toks with
  | [ Core.Edc.Text "sum="; Core.Edc.Num a; Core.Edc.Text " p=";
      Core.Edc.Num b; Core.Edc.Text " ok" ] ->
    Alcotest.(check (float 1e-9)) "int" (-12.0) a;
    Alcotest.(check (float 1e-9)) "float" 0.5 b
  | _ -> Alcotest.failf "unexpected tokens (%d)" (List.length toks)

let test_edc_classification () =
  let golden = "crc=1000 x=2.000000" in
  let check name expected observed =
    let sev = Core.Edc.classify ~golden ~observed () in
    let ok =
      match (expected, sev) with
      | `Not, Core.Edc.Not_sdc -> true
      | `Tol, Core.Edc.Tolerable _ -> true
      | `Egr, Core.Edc.Egregious _ -> true
      | _ -> false
    in
    if not ok then Alcotest.failf "%s misclassified" name
  in
  check "identical" `Not golden;
  check "small deviation" `Tol "crc=1001 x=2.000001";
  check "large deviation" `Egr "crc=5000 x=2.000000";
  check "structural change" `Egr "crc=1000 y=2.000000";
  check "missing field" `Egr "crc=1000";
  (* deviation from zero golden *)
  let sev =
    Core.Edc.classify ~golden:"v=0" ~observed:"v=3" ()
  in
  Alcotest.(check bool) "zero golden deviates egregiously" true
    (Core.Edc.is_egregious sev)

let test_edc_threshold () =
  let golden = "x=100" in
  let observed = "x=105" in
  (match Core.Edc.classify ~threshold:0.10 ~golden ~observed () with
  | Core.Edc.Tolerable d -> Alcotest.(check (float 1e-9)) "5%" 0.05 d
  | _ -> Alcotest.fail "should be tolerable at 10%");
  match Core.Edc.classify ~threshold:0.01 ~golden ~observed () with
  | Core.Edc.Egregious (Some _) -> ()
  | _ -> Alcotest.fail "should be egregious at 1%"

let test_edc_identity_property =
  QCheck.Test.make ~name:"identical outputs are never SDCs" ~count:200
    QCheck.printable_string
    (fun s ->
      Core.Edc.classify ~golden:s ~observed:s () = Core.Edc.Not_sdc)

let test_edc_tokenize_total =
  QCheck.Test.make ~name:"tokenize never raises and covers the input" ~count:200
    QCheck.printable_string
    (fun s ->
      let toks = Core.Edc.tokenize s in
      (* Total text length of tokens equals input length. *)
      let len =
        List.fold_left
          (fun acc t ->
            match t with
            | Core.Edc.Text txt -> acc + String.length txt
            | Core.Edc.Num _ -> acc)
          0 toks
      in
      (* Numeric tokens consume at least one character each. *)
      let nums = List.length (List.filter (function Core.Edc.Num _ -> true | _ -> false) toks) in
      len + nums <= String.length s + nums && len <= String.length s)

let test_edc_study_consistent () =
  let prog = Opt.optimize (Minic.compile mcf.Core.Workload.source) in
  let llfi = Core.Llfi.prepare ~inputs:mcf.Core.Workload.inputs prog in
  let study =
    Core.Edc.run_study llfi Core.Category.All ~trials:60 (Support.Rng.of_int 5)
  in
  Alcotest.(check int) "sdc = egregious + tolerable" study.Core.Edc.s_sdc
    (study.s_egregious + study.s_tolerable)

(* --- Report smoke tests --- *)

let test_report_renders () =
  let p = Lazy.force prepared in
  let cells =
    List.concat_map
      (fun tool ->
        List.map
          (fun c -> Core.Campaign.run_cell small_config p tool c)
          Core.Category.all)
      [ Core.Campaign.Llfi_tool; Core.Campaign.Pinfi_tool ]
  in
  (* These must not raise; output goes to stdout and is checked by the
     bench harness run. *)
  Core.Report.table1 [ p ];
  Core.Report.table2 [ mcf ];
  Core.Report.table3 ();
  Core.Report.table4 [ p ];
  Core.Report.figure2 ();
  Core.Report.figure3 cells;
  Core.Report.figure4 cells;
  Core.Report.table5 cells;
  let verdicts = Core.Report.evaluate_claims [ p ] cells in
  Alcotest.(check int) "all claims evaluated"
    (List.length Core.Paper_data.claims)
    (List.length verdicts)

let () =
  Alcotest.run "core"
    [
      ( "category",
        [
          ("bits distinct + roundtrip", `Quick, test_category_bits_distinct);
          ("mask totals", `Quick, test_category_totals);
        ] );
      ( "llfi",
        [
          ("classify categories", `Quick, test_llfi_classify_categories);
          ("skips dead destinations", `Quick, test_llfi_skips_dead_destinations);
          ("cast pruning", `Quick, test_llfi_cast_pruning);
        ] );
      ("pinfi", [ ("classify invariants", `Quick, test_pinfi_classify) ]);
      ( "verdict",
        [
          ("classification", `Quick, test_verdict_classification);
          ("tally rates", `Quick, test_tally_rates);
        ] );
      ( "campaign",
        [
          ("golden outputs match", `Quick, test_prepare_golden_match);
          ("deterministic", `Quick, test_campaign_deterministic);
          ("seed sensitivity", `Quick, test_campaign_seed_changes_results);
          ("counts trials", `Quick, test_campaign_counts_trials);
          ("injections have effects", `Quick, test_injection_changes_behavior_sometimes);
          ("csv export", `Quick, test_csv_export);
          ("pinfi activation high", `Quick, test_pinfi_activation_high);
          ("injected step recorded", `Quick, test_injected_step_recorded);
          ("custom selector restricts", `Quick, test_custom_selector_restricts);
        ] );
      ( "snapshot",
        [
          ("matches direct execution", `Quick, test_snapshot_matches_direct);
          ("runner reuse + rejection", `Quick, test_snapshot_runner_reuse);
          ("any target order", `Quick, test_ff_trial_any_order);
        ] );
      ( "edc",
        [
          ("tokenize", `Quick, test_edc_tokenize);
          ("classification", `Quick, test_edc_classification);
          ("threshold", `Quick, test_edc_threshold);
          ("study consistent", `Quick, test_edc_study_consistent);
          QCheck_alcotest.to_alcotest test_edc_identity_property;
          QCheck_alcotest.to_alcotest test_edc_tokenize_total;
        ] );
      ( "propagation",
        [
          ("traces deterministic", `Quick, test_traces_are_deterministic);
          ("reports consistent", `Quick, test_propagation_reports);
          ("compare_traces cases", `Quick, test_benign_faults_can_still_propagate);
        ] );
      ( "paper data",
        [
          ("complete", `Quick, test_paper_data_complete);
          ("table 4 internal claims", `Quick, test_paper_table4_claims_hold_internally);
        ] );
      ("report", [ ("renders", `Quick, test_report_renders) ]);
    ]
